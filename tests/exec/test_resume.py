"""Checkpoint-journal resume tests: skip completed jobs, rebuild results."""

import json

import pytest

from repro.exec import SerialExecutor, build_jobs
from repro.sim.checkpoint import JOURNAL_VERSION, JobJournal
from repro.util.statistics import StatGroup

JOBS = build_jobs(["gzip"], ["decrypt-only", "authen-then-commit"],
                  num_instructions=600, warmup=300)


class CountingExecutor(SerialExecutor):
    """Serial backend that counts how many jobs actually simulate."""

    def __init__(self):
        super().__init__()
        self.executed = 0

    def _execute(self, pending, results, state):
        self.executed += len(pending)
        super()._execute(pending, results, state)


class TestJournalResume:
    def test_completed_jobs_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = CountingExecutor()
        before = first.run(JOBS, journal=JobJournal(path))
        assert first.executed == len(JOBS)

        second = CountingExecutor()
        after = second.run(JOBS, journal=JobJournal(path))
        assert second.executed == 0
        for job in JOBS:
            assert after[job].cycles == before[job].cycles
            assert after[job].ipc == before[job].ipc
            assert after[job].stats.as_dict() == \
                before[job].stats.as_dict()
            assert after[job].miss_summary == before[job].miss_summary

    def test_partial_journal_runs_only_the_rest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CountingExecutor().run(JOBS[:1], journal=JobJournal(path))

        resumed = CountingExecutor()
        results = resumed.run(JOBS, journal=JobJournal(path))
        assert resumed.executed == len(JOBS) - 1
        assert set(results) == set(JOBS)

    def test_changed_spec_changes_id_and_reruns(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CountingExecutor().run(JOBS, journal=JobJournal(path))
        bigger = build_jobs(["gzip"], ["decrypt-only"],
                            num_instructions=700, warmup=300)
        rerun = CountingExecutor()
        rerun.run(bigger, journal=JobJournal(path))
        assert rerun.executed == 1  # different job_id -> not skipped

    def test_rebuilt_stats_are_live_statgroups(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        result = JobJournal(path).result(JOBS[1])
        assert isinstance(result.stats, StatGroup)
        assert result.stats["auth_requests"].value > 0
        # Histogram bucket keys survive the JSON round trip as ints.
        gap = result.stats["decrypt_verify_gap"]
        assert gap.total > 0
        assert all(isinstance(k, int) for k in gap.buckets)
        assert gap.mean() > 0

    def test_truncated_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        with open(path, "a") as handle:
            handle.write('{"journal_version": %d, "job_id": "dead'
                         % JOURNAL_VERSION)  # killed mid-write
        journal = JobJournal(path)
        assert len(journal) == len(JOBS)
        assert journal.skipped_lines == 1

    def test_incompatible_version_lines_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {"journal_version": JOURNAL_VERSION + 1,
                  "job_id": JOBS[0].job_id}
        path.write_text(json.dumps(record) + "\n")
        journal = JobJournal(path)
        assert len(journal) == 0
        assert journal.skipped_lines == 1
        assert journal.result(JOBS[0]) is None

    def test_result_none_for_unknown_job(self, tmp_path):
        journal = JobJournal(tmp_path / "missing.jsonl")
        assert journal.result(JOBS[0]) is None
        assert len(journal) == 0


class TestStatGroupFromDict:
    def test_round_trip(self):
        group = StatGroup("g")
        group.counter("hits").add(5)
        group.histogram("gap").add(3, 2)
        group.histogram("gap").add(7)
        snapshot = group.as_dict()
        # Simulate the JSON round trip (keys become strings).
        snapshot = json.loads(json.dumps(snapshot))
        rebuilt = StatGroup.from_dict(snapshot, name="g")
        assert rebuilt.as_dict() == group.as_dict()
        assert rebuilt["gap"].percentile(50) == group["gap"].percentile(50)

    def test_non_numeric_histogram_keys_kept(self):
        rebuilt = StatGroup.from_dict({"h": {"label": 4}})
        assert rebuilt["h"].buckets == {"label": 4}


class TestJournalIntegrity:
    """v2 hardening: CRC32 seals, quarantine sidecar, compaction."""

    def _flip_crc_protected_digit(self, line):
        # Flip a digit INSIDE the cycles value (never its first digit,
        # which could make invalid leading-zero JSON and take the
        # unparseable path instead of the CRC path this test pins).
        at = line.find('"cycles": ') + len('"cycles": ') + 1
        assert line[at].isdigit()
        return line[:at] + chr(ord(line[at]) ^ 1) + line[at + 1:]

    def test_bitflip_caught_by_crc_and_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        lines = path.read_text().splitlines()
        lines[0] = self._flip_crc_protected_digit(lines[0])
        path.write_text("\n".join(lines) + "\n")

        journal = JobJournal(path)
        assert journal.quarantined_lines == 1
        assert len(journal) == len(JOBS) - 1
        rej = json.loads(
            (tmp_path / "journal.jsonl.rej").read_text().splitlines()[0])
        assert "crc32 mismatch" in rej["reason"]
        # The journal itself was rewritten clean: reopening sees no
        # corruption and the sidecar preserves the evidence.
        assert JobJournal(path).skipped_lines == 0

    def test_missing_crc_is_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {"journal_version": JOURNAL_VERSION, "job_id": "abc"}
        path.write_text(json.dumps(record) + "\n")
        journal = JobJournal(path)
        assert journal.quarantined_lines == 1
        assert len(journal) == 0

    def test_incompatible_lines_survive_on_disk(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        foreign = json.dumps({"journal_version": JOURNAL_VERSION + 1,
                              "job_id": "future"})
        path.write_text(foreign + "\n")
        SerialExecutor().run(JOBS[:1], journal=JobJournal(path))
        # Ignored in place -- a newer build's records are not destroyed.
        journal = JobJournal(path)
        assert journal.incompatible_lines == 1
        assert foreign in path.read_text()

    def test_metrics_round_trip(self, tmp_path):
        from repro.sim.metrics import RunMetrics

        path = tmp_path / "journal.jsonl"
        live = SerialExecutor().run(JOBS, journal=JobJournal(path))
        for job in JOBS:
            rebuilt = JobJournal(path).result(job)
            assert isinstance(rebuilt.metrics, RunMetrics)
            assert rebuilt.metrics.as_dict() == \
                live[job].metrics.as_dict()

    def test_compact_drops_stale_and_foreign_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps(
            {"journal_version": JOURNAL_VERSION - 1, "job_id": "old"})
            + "\n")
        SerialExecutor().run(JOBS, journal=JobJournal(path))

        journal = JobJournal(path)
        keep = {JOBS[0].job_id}
        dropped = journal.compact(keep_ids=keep)
        assert dropped == 2  # one foreign line + one superseded record
        assert journal.completed_ids == keep
        reopened = JobJournal(path)
        assert reopened.completed_ids == keep
        assert reopened.skipped_lines == 0
        assert reopened.result(JOBS[0]).cycles > 0

    def test_compact_without_keep_ids_keeps_all_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        journal = JobJournal(path)
        assert journal.compact() == 0
        assert JobJournal(path).completed_ids == \
            {job.job_id for job in JOBS}
