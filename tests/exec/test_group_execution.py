"""Grouped (decode once, evaluate N) execution pipeline tests.

One :class:`MultiPolicySimJob` must be observably indistinguishable
from the N plain jobs it replaces: identical member job_ids, identical
results on every backend, journal-compatible resume that re-runs only
unfinished members, and cache accounting that credits the in-group
trace reuse.
"""

import pytest

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    TraceCache,
    build_job_groups,
    build_jobs,
)
from repro.exec.job import MultiPolicySimJob
from repro.exec.retry import STATUS_OK, STATUS_RESUMED
from repro.sim.checkpoint import JobJournal

BENCHMARKS = ("gzip", "mcf")
POLICIES = ("decrypt-only", "authen-then-commit", "authen-then-issue",
            "commit+obfuscation")   # last one: legacy-fallback member
N, W = 800, 400

GROUPS = build_job_groups(BENCHMARKS, POLICIES,
                          num_instructions=N, warmup=W)
PLAIN = build_jobs(BENCHMARKS, POLICIES, num_instructions=N, warmup=W)


@pytest.fixture(scope="module")
def plain_results():
    return SerialExecutor().run(PLAIN)


class TestGroupSpec:
    def test_member_ids_match_plain_jobs(self):
        grouped_ids = [member.job_id for group in GROUPS
                       for member in group.member_jobs]
        assert grouped_ids == [job.job_id for job in PLAIN]

    def test_group_validation(self):
        with pytest.raises(Exception):
            MultiPolicySimJob("mcf", ())
        with pytest.raises(Exception):
            MultiPolicySimJob("mcf", ("decrypt-only", "decrypt-only"))
        with pytest.raises(Exception):
            MultiPolicySimJob("mcf", ("no-such-policy",))

    def test_subset_preserves_member_ids(self):
        trimmed = GROUPS[0].subset(POLICIES[1:])
        assert [m.job_id for m in trimmed.member_jobs] == \
            [m.job_id for m in GROUPS[0].member_jobs[1:]]


class TestGroupedExecutionParity:
    def test_serial_grouped_identical_to_plain(self, plain_results):
        grouped = SerialExecutor().run(GROUPS)
        assert {job.job_id for job in grouped} == \
            {job.job_id for job in plain_results}
        by_id = {job.job_id: result for job, result
                 in plain_results.items()}
        for member, result in grouped.items():
            legacy = by_id[member.job_id]
            assert result.cycles == legacy.cycles
            assert result.stats.as_dict() == legacy.stats.as_dict()
            assert result.miss_summary == legacy.miss_summary

    def test_parallel_grouped_identical_to_plain(self, plain_results):
        with ParallelExecutor(2) as executor:
            grouped = executor.run(GROUPS)
        by_id = {job.job_id: result for job, result
                 in plain_results.items()}
        for member, result in grouped.items():
            legacy = by_id[member.job_id]
            assert result.cycles == legacy.cycles
            assert result.stats.as_dict() == legacy.stats.as_dict()

    def test_member_outcomes_recorded_individually(self):
        executor = SerialExecutor()
        executor.run(GROUPS)
        outcomes = executor.last_outcomes
        for group in GROUPS:
            for member in group.member_jobs:
                assert outcomes[member.job_id].status == STATUS_OK


class TestGroupResume:
    def test_journaled_members_resume(self, tmp_path, plain_results):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        # Pre-seed the journal with half of the first group's members,
        # as a plain per-job sweep would have written them.
        seeded = GROUPS[0].member_jobs[:2]
        for member in seeded:
            journal.record(member, plain_results[
                next(j for j in plain_results if j.job_id
                     == member.job_id)])
        executor = SerialExecutor()
        results = executor.run(GROUPS, journal=JobJournal(path))
        # Full result set comes back...
        assert {job.job_id for job in results} == \
            {job.job_id for job in PLAIN}
        # ...but only the unseeded members were executed.
        seeded_ids = {member.job_id for member in seeded}
        for job_id, outcome in executor.last_outcomes.items():
            expected = (STATUS_RESUMED if job_id in seeded_ids
                        else STATUS_OK)
            assert outcome.status == expected
        # Resumed results are bit-identical to a fresh run.
        by_id = {job.job_id: result for job, result
                 in plain_results.items()}
        for member, result in results.items():
            assert result.cycles == by_id[member.job_id].cycles

    def test_rerun_after_full_journal_executes_nothing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(GROUPS, journal=JobJournal(path))
        executor = SerialExecutor()
        results = executor.run(GROUPS, journal=JobJournal(path))
        assert len(results) == len(PLAIN)
        assert all(outcome.status == STATUS_RESUMED
                   for outcome in executor.last_outcomes.values())


class TestGroupCacheAccounting:
    def test_one_generation_n_minus_one_hits(self):
        cache = TraceCache()
        group = GROUPS[0]
        SerialExecutor(cache=cache).run([group])
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(group.policies) - 1
        assert stats["group_reuses"] == len(group.policies) - 1
        assert stats["hit_rate"] == pytest.approx(
            (len(group.policies) - 1) / len(group.policies))

    def test_fresh_cache_stats_no_division_by_zero(self):
        assert TraceCache().stats()["hit_rate"] == 0.0

    def test_member_accounting_marks_reuse(self):
        cache = TraceCache()
        group = GROUPS[0]
        results = SerialExecutor(cache=cache).run([group])
        by_policy = {member.policy: result
                     for member, result in results.items()}
        first = by_policy[group.policies[0]]
        assert first.accounting["cache_hit"] is False
        for policy in group.policies[1:]:
            accounting = by_policy[policy].accounting
            assert accounting["cache_hit"] is True
            assert accounting["tracegen_seconds"] == 0.0
