"""Multi-host work-stealing backend: spool, leases, merge, recovery.

Everything here runs on one machine -- worker daemons are plain
threads or child processes sharing a tmp_path spool -- but the
protocol under test is the cross-host one: exclusive lease claims,
heartbeats, per-host journal segments, driver-side merge, and the
failure ladder (worker error -> retry -> skip; lost host -> lease
reaped, unit re-claimed; empty fleet -> degrade to local).  The
invariant every test holds is the repo-wide one: results bit-identical
to ``SerialExecutor``.
"""

import json
import os
import threading
import time

import pytest

from repro.exec import (
    DistExecutor,
    SerialExecutor,
    build_job_groups,
    build_jobs,
    run_worker,
)
from repro.exec.chaos import result_digest, run_dist_chaos
from repro.exec.dist import (
    JournalTail,
    completed_job_ids,
    ensure_spool,
    lease_age,
    release_lease,
    request_stop,
    segment_path,
    spool_jobs,
    try_claim,
)
from repro.exec.retry import RETRY_THEN_SKIP, FailurePolicy
from repro.sim.checkpoint import JobJournal

N = 800
WARMUP = 400
BENCHMARKS = ["gzip", "mcf"]
POLICIES = ["decrypt-only", "authen-then-commit"]


def _jobs():
    return build_jobs(BENCHMARKS, POLICIES,
                      num_instructions=N, warmup=WARMUP)


def _groups():
    return build_job_groups(BENCHMARKS, POLICIES,
                            num_instructions=N, warmup=WARMUP)


@pytest.fixture(scope="module")
def reference():
    jobs = _jobs()
    results = SerialExecutor().run(jobs)
    return {job.job_id: result_digest(results[job]) for job in jobs}


def _assert_identical(results, reference):
    assert {job.job_id for job in results} == set(reference)
    for job, result in results.items():
        assert result_digest(result) == reference[job.job_id]


class TestSpoolProtocol:
    def test_spool_and_claim_are_exclusive(self, tmp_path):
        spool = ensure_spool(tmp_path / "spool")
        groups = _groups()
        ids = spool_jobs(spool, groups)
        assert len(ids) == len(groups)
        # Second spool of the same units is a no-op (resubmit-safe).
        assert spool_jobs(spool, groups) == []
        lease = try_claim(spool, ids[0], "worker-a")
        assert lease is not None
        assert try_claim(spool, ids[0], "worker-b") is None
        assert lease_age(lease) is not None
        release_lease(lease)
        assert lease_age(lease) is None
        assert try_claim(spool, ids[0], "worker-b") is not None

    def test_worker_max_units_and_done_ids(self, tmp_path):
        spool = ensure_spool(tmp_path / "spool")
        groups = _groups()
        spool_jobs(spool, groups)
        summary = run_worker(spool, host_id="solo", poll=0.01,
                             lease_timeout=1.0, max_units=1)
        assert summary["units"] == 1
        assert summary["members"] == len(POLICIES)
        done = completed_job_ids(spool)
        assert len(done) == len(POLICIES)
        # The claimed unit's job file is gone, its lease released.
        remaining = os.listdir(os.path.join(spool, "jobs"))
        assert len(remaining) == len(groups) - 1
        assert os.listdir(os.path.join(spool, "leases")) == []


class TestJournalTail:
    def test_incremental_polls_and_torn_tail(self, tmp_path):
        jobs = _jobs()[:2]
        results = SerialExecutor().run(jobs)
        path = str(tmp_path / "seg.journal")
        journal = JobJournal(path)
        journal.record(jobs[0], results[jobs[0]])
        tail = JournalTail(path)
        first = tail.poll()
        assert [r["job_id"] for r in first] == [jobs[0].job_id]
        assert tail.poll() == []          # nothing new
        journal.record(jobs[1], results[jobs[1]])
        assert [r["job_id"] for r in tail.poll()] == [jobs[1].job_id]

    def test_unterminated_line_waits_corrupt_line_counts(self, tmp_path):
        path = str(tmp_path / "seg.journal")
        tail = JournalTail(path)
        assert tail.poll() == []          # missing file: nothing yet
        with open(path, "ab") as handle:
            handle.write(b'{"journal_version": 2, "job_id": "half')
        assert tail.poll() == []          # write in flight: wait
        with open(path, "ab") as handle:
            handle.write(b'"}\n')
        assert tail.poll() == []          # complete but CRC-less
        assert tail.bad_lines == 1


class TestDistExecutor:
    def test_worker_thread_and_driver_merge_bit_identical(
            self, tmp_path, reference):
        spool = str(tmp_path / "spool")
        worker = threading.Thread(
            target=run_worker, args=(spool,),
            kwargs=dict(host_id="thread-a", poll=0.01, lease_timeout=1.0))
        worker.start()
        executor = DistExecutor(spool, poll=0.01, lease_timeout=1.0,
                                degrade_after=60.0)
        try:
            results = executor.run(_groups())
        finally:
            request_stop(spool)
            worker.join(timeout=30)
        assert not worker.is_alive()
        _assert_identical(results, reference)
        assert not executor.degraded
        assert "thread-a" in executor.hosts_seen
        assert os.path.exists(segment_path(spool, "thread-a"))
        assert executor.describe()["backend"] == "dist"

    def test_degrades_to_local_when_no_worker_appears(
            self, tmp_path, reference):
        executor = DistExecutor(str(tmp_path / "spool"), poll=0.01,
                                lease_timeout=0.5, degrade_after=0.1)
        results = executor.run(_groups())
        _assert_identical(results, reference)
        assert executor.degraded
        assert executor.describe()["degraded"]

    def test_preexisting_segment_records_are_merged_not_rerun(
            self, tmp_path, reference):
        spool = ensure_spool(tmp_path / "spool")
        jobs = _jobs()
        seeded = jobs[0]
        result = SerialExecutor().run([seeded])[seeded]
        JobJournal(segment_path(spool, "pre")).record(seeded, result)
        executor = DistExecutor(spool, poll=0.01, lease_timeout=0.5,
                                degrade_after=0.1)
        results = executor.run(_groups())
        _assert_identical(results, reference)
        tail = JournalTail(segment_path(spool, "pre"))
        assert [r["job_id"] for r in tail.poll()] == [seeded.job_id]

    def test_worker_errors_charge_retries_then_skip(self, tmp_path):
        spool = str(tmp_path / "spool")
        groups = _groups()
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=2,
                               backoff_base=0.0, backoff_max=0.0)
        executor = DistExecutor(spool, poll=0.01, lease_timeout=5.0,
                                degrade_after=60.0, local_fallback=False)
        victim_id = groups[0].job_id
        box = {}

        def drive():
            box["results"] = executor.run(groups, failure_policy=policy)

        # Pin the victim's lease so the helper worker can only claim
        # the other units (workers never break leases, whatever their
        # age); the lease outlives the test's ~2s, so the driver never
        # reaps it into the attempt accounting either.
        ensure_spool(spool)
        pin = try_claim(spool, victim_id, "pinner")
        assert pin is not None
        driver = threading.Thread(target=drive)
        driver.start()
        job_path = os.path.join(spool, "jobs", victim_id + ".job")
        deadline = time.monotonic() + 30
        while not os.path.exists(job_path):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # Two reported attempt failures exhaust max_attempts=2; the
        # other unit is satisfied from a worker segment so the run
        # can finish without any live host.
        others = [g for g in groups if g.job_id != victim_id]
        worker = threading.Thread(
            target=run_worker, args=(spool,),
            kwargs=dict(host_id="helper", poll=0.01, lease_timeout=5.0,
                        max_units=len(others)))
        worker.start()
        with open(os.path.join(spool, "errors", victim_id + ".err"),
                  "a") as handle:
            for attempt in (1, 2):
                handle.write(json.dumps(
                    {"job_id": victim_id, "host_id": "helper",
                     "error": "boom %d" % attempt}) + "\n")
        driver.join(timeout=60)
        worker.join(timeout=30)
        release_lease(pin)
        assert not driver.is_alive() and not worker.is_alive()
        results = box["results"]
        member_ids = {m.job_id for m in groups[0].member_jobs}
        assert member_ids == set(executor.failures)
        assert {job.job_id for job in results} == {
            m.job_id for g in others for m in g.member_jobs}
        assert os.path.exists(
            os.path.join(spool, "skip", victim_id + ".skip"))


class TestDistChaos:
    def test_campaigns_heal_bit_identically(self, tmp_path):
        report = run_dist_chaos(num_instructions=N, warmup=WARMUP,
                                seed=1, workdir=str(tmp_path / "chaos"))
        assert report.identical, report.render()
        assert report.host_losses >= 1
        assert report.victim_records >= 1
        assert report.exactly_once
        assert report.split_quarantined == 1
        assert report.split_resumed == report.total_members
        assert report.degraded_ok
