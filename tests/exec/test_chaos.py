"""Chaos-harness tests: seeded schedules, journal corruption, recovery."""

import json

import pytest

from repro.errors import ReproError
from repro.exec import SerialExecutor, build_jobs
from repro.exec.chaos import (
    ALL_FAULTS,
    FAULT_HANG,
    FAULT_JOB_EXCEPTION,
    FAULT_JOURNAL_BITFLIP,
    FAULT_JOURNAL_TRUNCATE,
    FAULT_WORKER_KILL,
    ChaosPlan,
    InjectedFault,
    build_plan,
    corrupt_journal,
    result_digest,
    run_chaos,
)
from repro.sim.checkpoint import JobJournal

JOBS = build_jobs(["gzip"], ["decrypt-only", "authen-then-commit",
                             "authen-then-issue"],
                  num_instructions=600, warmup=300)


class TestBuildPlan:
    def test_same_seed_same_schedule(self):
        one = build_plan(JOBS, seed=5)
        two = build_plan(JOBS, seed=5)
        assert one.job_faults == two.job_faults
        assert one.journal_faults == two.journal_faults

    def test_different_seed_can_differ(self):
        schedules = {frozenset(build_plan(JOBS, seed=s).job_faults.items())
                     for s in range(8)}
        assert len(schedules) > 1

    def test_each_job_fault_hits_a_distinct_job(self):
        plan = build_plan(JOBS, seed=0)
        assert sorted(plan.job_faults.values()) == sorted(
            [FAULT_WORKER_KILL, FAULT_JOB_EXCEPTION, FAULT_HANG])
        assert len(set(plan.job_faults)) == 3

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError):
            build_plan(JOBS, seed=0, faults=("disk-on-fire",))

    def test_fault_subset_respected(self):
        plan = build_plan(JOBS, seed=0,
                          faults=(FAULT_JOB_EXCEPTION,
                                  FAULT_JOURNAL_TRUNCATE))
        assert set(plan.job_faults.values()) == {FAULT_JOB_EXCEPTION}
        assert plan.journal_faults == (FAULT_JOURNAL_TRUNCATE,)

    def test_faults_fire_on_first_attempt_only(self):
        plan = ChaosPlan(0, {JOBS[0].job_id: FAULT_JOB_EXCEPTION})
        with pytest.raises(InjectedFault):
            plan(JOBS[0], 1)
        assert plan(JOBS[0], 2) is None
        assert plan(JOBS[1], 1) is None

    def test_worker_kill_downgrades_in_driver_process(self):
        plan = ChaosPlan(0, {JOBS[0].job_id: FAULT_WORKER_KILL})
        with pytest.raises(InjectedFault):  # must NOT SIGKILL this test
            plan(JOBS[0], 1)


class TestCorruptJournal:
    @pytest.fixture
    def journal_path(self, tmp_path):
        path = tmp_path / "chaos.journal"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        return path

    def test_truncate_tears_final_record(self, journal_path):
        before = journal_path.read_text().splitlines()
        applied = corrupt_journal(journal_path,
                                  (FAULT_JOURNAL_TRUNCATE,), seed=0)
        assert any("truncated" in note for note in applied)
        after = journal_path.read_text().splitlines()
        assert len(after) == len(before)
        assert after[-1] == before[-1][:len(before[-1]) // 2]
        journal = JobJournal(journal_path)
        assert journal.quarantined_lines == 1
        assert len(journal) == len(JOBS) - 1

    def test_bitflip_is_caught_by_crc(self, journal_path):
        applied = corrupt_journal(journal_path,
                                  (FAULT_JOURNAL_BITFLIP,), seed=0)
        assert any("flipped" in note for note in applied)
        journal = JobJournal(journal_path)
        assert journal.quarantined_lines == 1
        assert len(journal) == len(JOBS) - 1

    def test_missing_journal_is_a_noop(self, tmp_path):
        assert corrupt_journal(tmp_path / "nope", ALL_FAULTS, 0) == []


class TestRunChaos:
    def test_serial_exception_campaign_converges(self, tmp_path):
        report = run_chaos(num_instructions=600, warmup=300, seed=1,
                           faults=(FAULT_JOB_EXCEPTION,
                                   FAULT_JOURNAL_TRUNCATE),
                           workers=1, workdir=str(tmp_path))
        assert report.identical
        assert report.failures == []
        assert FAULT_JOB_EXCEPTION in report.injected.values()
        assert report.quarantined_lines == 1
        # The injected job took >1 attempt; everyone else took 1.
        assert any(n > 1 for n in report.attempts.values())
        assert report.as_dict()["stats_digest"] == report.stats_digest
        assert "bit-identical" in report.render()

    def test_full_campaign_with_worker_kills_converges(self, tmp_path):
        report = run_chaos(num_instructions=600, warmup=300, seed=0,
                           workers=2, hang_seconds=1.0, timeout=0.5,
                           workdir=str(tmp_path))
        assert report.identical
        assert report.failures == []
        assert sorted(report.injected.values()) == sorted(
            [FAULT_WORKER_KILL, FAULT_JOB_EXCEPTION, FAULT_HANG])
        assert report.pool_rebuilds >= 1  # the kill broke the pool
        assert report.retry_events >= 1
        assert report.quarantined_lines >= 1
        assert len(report.journal_corruption) == 2

    def test_campaign_is_reproducible(self, tmp_path):
        kwargs = dict(num_instructions=600, warmup=300, seed=3,
                      faults=(FAULT_JOB_EXCEPTION,), workers=1)
        one = run_chaos(workdir=str(tmp_path / "a"), **kwargs)
        two = run_chaos(workdir=str(tmp_path / "b"), **kwargs)
        assert one.stats_digest == two.stats_digest
        assert one.injected == two.injected
        assert one.attempts == two.attempts


class TestResultDigest:
    def test_digest_tracks_result_content(self):
        results = SerialExecutor().run(JOBS[:2])
        a, b = (results[job] for job in JOBS[:2])
        assert result_digest(a) == result_digest(a)
        assert result_digest(a) != result_digest(b)


class TestChaosCli:
    def test_cli_reports_and_exits_zero(self, capsys, tmp_path):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(["chaos", "--seed", "0",
                     "--faults", "job-exception,journal-bitflip",
                     "-n", "600", "--warmup", "300", "-j", "1",
                     "--workdir", str(tmp_path),
                     "--emit-json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        payload = json.loads(report_path.read_text())
        assert payload["identical"] is True
        assert payload["faults"] == ["job-exception", "journal-bitflip"]

    def test_cli_rejects_unknown_fault(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--faults", "gremlins"]) == 2
        assert "unknown fault" in capsys.readouterr().err


class TestInfraFaults:
    def test_fault_for_matches_benchmark_policy_key(self):
        plan = ChaosPlan(0, {"gzip/decrypt-only": FAULT_JOB_EXCEPTION})
        target = next(j for j in JOBS if j.policy == "decrypt-only")
        other = next(j for j in JOBS if j.policy != "decrypt-only")
        assert plan.fault_for(target, 1) == FAULT_JOB_EXCEPTION
        assert plan.fault_for(target, 2) is None
        assert plan.fault_for(other, 1) is None

    def test_init_fault_fires_exactly_once(self, tmp_path):
        from repro.exec.chaos import FAULT_POOL_INIT

        plan = ChaosPlan(0, {}, infra_faults=(FAULT_POOL_INIT,))
        plan.arm_init_fault(str(tmp_path / "sentinel"))
        with pytest.raises(InjectedFault):
            plan.init_fault()
        plan.init_fault()  # sentinel exists: the rebuilt pool heals

    def test_unarmed_init_fault_is_a_noop(self):
        from repro.exec.chaos import FAULT_POOL_INIT

        ChaosPlan(0, {}).init_fault()
        ChaosPlan(0, {}, infra_faults=(FAULT_POOL_INIT,)).init_fault()

    def test_enospc_journal_degrades_not_aborts(self, tmp_path):
        from repro.exec.chaos import _enospc_journal
        from repro.obs import MemorySink, Tracer
        from repro.obs.events import JOURNAL_DEGRADED

        sink = MemorySink()
        journal = _enospc_journal(str(tmp_path / "j.jsonl"), fail_at=2)
        executor = SerialExecutor()
        results = executor.run(JOBS, journal=journal,
                               tracer=Tracer([sink]))
        # Every job completed in memory despite the dead journal...
        assert set(results) == set(JOBS)
        degraded = [e for e in sink.events
                    if e.kind == JOURNAL_DEGRADED]
        assert len(degraded) == 1
        assert "ENOSPC" in degraded[0].args["error"].upper() or \
            "28" in degraded[0].args["error"]
        # ...and only the pre-failure record made it to disk.
        assert len(JobJournal(str(tmp_path / "j.jsonl"))) == 1

    def test_pool_init_campaign_converges(self, tmp_path):
        from repro.exec.chaos import FAULT_POOL_INIT

        report = run_chaos(policies=("decrypt-only",
                                     "authen-then-commit"),
                           num_instructions=600, warmup=300, seed=0,
                           faults=(FAULT_POOL_INIT,), workers=2,
                           workdir=str(tmp_path))
        assert report.identical
        assert report.pool_rebuilds >= 1
        assert report.failures == []

    def test_enospc_campaign_converges(self, tmp_path):
        from repro.exec.chaos import FAULT_JOURNAL_ENOSPC

        report = run_chaos(policies=("decrypt-only",
                                     "authen-then-commit"),
                           num_instructions=600, warmup=300, seed=0,
                           faults=(FAULT_JOURNAL_ENOSPC,), workers=1,
                           workdir=str(tmp_path))
        assert report.identical
        assert report.journal_degraded_events == 1
        # The journal died after one record: phase 3 re-simulates the
        # lost jobs instead of resuming them.
        assert report.reexecuted_jobs >= 1
        assert "journal degraded" in report.render()


class TestFiguresChaos:
    def test_worker_kill_yields_identical_artifacts(self, tmp_path):
        from repro.exec.chaos import run_figures_chaos

        report = run_figures_chaos(figures=("fig8",),
                                   benchmarks=("gzip",),
                                   num_instructions=600, warmup=300,
                                   workers=2, workdir=str(tmp_path))
        assert report.identical
        assert report.failures == 0
        assert report.mismatches == []
        assert FAULT_WORKER_KILL in report.injected.values()
        assert report.pool_rebuilds >= 1
        assert "byte-identical" in report.render()

    def test_unknown_figure_rejected(self):
        from repro.exec.chaos import run_figures_chaos

        with pytest.raises(ReproError):
            run_figures_chaos(figures=("fig99",))

    def test_cli_figures_smoke(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["chaos", "--figures", "fig8",
                     "--benchmark", "gzip",
                     "-n", "600", "--warmup", "300",
                     "--workdir", str(tmp_path)])
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_cli_figures_rejects_unknown(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestGroupChaos:
    def test_serial_mid_group_campaign_converges(self, tmp_path):
        from repro.exec.chaos import run_group_chaos

        report = run_group_chaos(benchmarks=("gzip",),
                                 num_instructions=600, warmup=300,
                                 seed=0, workers=1,
                                 workdir=str(tmp_path))
        assert report.identical
        assert report.resume_exact
        assert report.failures == []
        assert report.mismatches == []
        # The kill landed mid-group: at least one member was journaled
        # before the fault, and resume re-ran only the rest.
        assert report.journaled_before_kill == 1
        assert report.resumed_members == 1
        assert (report.reexecuted_members
                == report.total_members - report.resumed_members)
        assert "bit-identical" in report.render()
        assert report.as_dict()["victim"] == report.victim

    def test_pool_worker_kill_campaign_converges(self, tmp_path):
        from repro.exec.chaos import run_group_chaos

        report = run_group_chaos(benchmarks=("gzip", "mcf"),
                                 num_instructions=600, warmup=300,
                                 seed=0, workers=2,
                                 workdir=str(tmp_path))
        assert report.identical
        assert report.pool_rebuilds >= 1   # the kill broke the pool
        assert report.failures == []

    def test_needs_enough_policies_for_a_mid_group_fault(self):
        from repro.exec.chaos import run_group_chaos

        with pytest.raises(ReproError):
            run_group_chaos(policies=("decrypt-only", "lazy"))

    def test_cli_group_smoke(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["chaos", "--group", "--benchmark", "gzip",
                     "-n", "600", "--warmup", "300",
                     "--workdir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "exactly the unfinished members" in out
        assert "bit-identical" in out


class TestStoreChaos:
    def test_campaign_quarantines_and_regenerates(self, tmp_path):
        from repro.exec.chaos import run_store_chaos

        report = run_store_chaos(benchmarks=("gzip",),
                                 num_instructions=600, warmup=300,
                                 seed=0, workdir=str(tmp_path))
        assert report.identical
        assert report.mismatches == []
        # Both damaged entries (trace + result) were quarantined, the
        # dead-pid lock was broken, and exactly the damaged job paid a
        # re-simulation -- every other job came straight from the store.
        assert report.quarantined == 2
        assert report.lock_breaks >= 1
        assert report.regenerated == 1
        assert report.store_hits == report.total_jobs - 1
        assert "bit-identical" in report.render()
        assert set(report.as_dict()["injected"].values()) == {
            "entry-truncate", "entry-bitflip", "stale-lock"}

    def test_quarantine_evidence_left_on_disk(self, tmp_path):
        import os

        from repro.exec.chaos import run_store_chaos

        report = run_store_chaos(benchmarks=("gzip",),
                                 num_instructions=600, warmup=300,
                                 workdir=str(tmp_path))
        assert report.identical
        quarantine = os.path.join(str(tmp_path), "store", "quarantine")
        assert len(os.listdir(quarantine)) == 2
        assert os.path.exists(os.path.join(str(tmp_path), "store",
                                           "quarantine.rej"))

    def test_cli_store_smoke(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["chaos", "--store", "--benchmark", "gzip",
                     "-n", "600", "--warmup", "300",
                     "--workdir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "store chaos campaign" in out
        assert "bit-identical" in out
