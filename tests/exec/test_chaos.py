"""Chaos-harness tests: seeded schedules, journal corruption, recovery."""

import json

import pytest

from repro.errors import ReproError
from repro.exec import SerialExecutor, build_jobs
from repro.exec.chaos import (
    ALL_FAULTS,
    FAULT_HANG,
    FAULT_JOB_EXCEPTION,
    FAULT_JOURNAL_BITFLIP,
    FAULT_JOURNAL_TRUNCATE,
    FAULT_WORKER_KILL,
    ChaosPlan,
    InjectedFault,
    build_plan,
    corrupt_journal,
    result_digest,
    run_chaos,
)
from repro.sim.checkpoint import JobJournal

JOBS = build_jobs(["gzip"], ["decrypt-only", "authen-then-commit",
                             "authen-then-issue"],
                  num_instructions=600, warmup=300)


class TestBuildPlan:
    def test_same_seed_same_schedule(self):
        one = build_plan(JOBS, seed=5)
        two = build_plan(JOBS, seed=5)
        assert one.job_faults == two.job_faults
        assert one.journal_faults == two.journal_faults

    def test_different_seed_can_differ(self):
        schedules = {frozenset(build_plan(JOBS, seed=s).job_faults.items())
                     for s in range(8)}
        assert len(schedules) > 1

    def test_each_job_fault_hits_a_distinct_job(self):
        plan = build_plan(JOBS, seed=0)
        assert sorted(plan.job_faults.values()) == sorted(
            [FAULT_WORKER_KILL, FAULT_JOB_EXCEPTION, FAULT_HANG])
        assert len(set(plan.job_faults)) == 3

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError):
            build_plan(JOBS, seed=0, faults=("disk-on-fire",))

    def test_fault_subset_respected(self):
        plan = build_plan(JOBS, seed=0,
                          faults=(FAULT_JOB_EXCEPTION,
                                  FAULT_JOURNAL_TRUNCATE))
        assert set(plan.job_faults.values()) == {FAULT_JOB_EXCEPTION}
        assert plan.journal_faults == (FAULT_JOURNAL_TRUNCATE,)

    def test_faults_fire_on_first_attempt_only(self):
        plan = ChaosPlan(0, {JOBS[0].job_id: FAULT_JOB_EXCEPTION})
        with pytest.raises(InjectedFault):
            plan(JOBS[0], 1)
        assert plan(JOBS[0], 2) is None
        assert plan(JOBS[1], 1) is None

    def test_worker_kill_downgrades_in_driver_process(self):
        plan = ChaosPlan(0, {JOBS[0].job_id: FAULT_WORKER_KILL})
        with pytest.raises(InjectedFault):  # must NOT SIGKILL this test
            plan(JOBS[0], 1)


class TestCorruptJournal:
    @pytest.fixture
    def journal_path(self, tmp_path):
        path = tmp_path / "chaos.journal"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        return path

    def test_truncate_tears_final_record(self, journal_path):
        before = journal_path.read_text().splitlines()
        applied = corrupt_journal(journal_path,
                                  (FAULT_JOURNAL_TRUNCATE,), seed=0)
        assert any("truncated" in note for note in applied)
        after = journal_path.read_text().splitlines()
        assert len(after) == len(before)
        assert after[-1] == before[-1][:len(before[-1]) // 2]
        journal = JobJournal(journal_path)
        assert journal.quarantined_lines == 1
        assert len(journal) == len(JOBS) - 1

    def test_bitflip_is_caught_by_crc(self, journal_path):
        applied = corrupt_journal(journal_path,
                                  (FAULT_JOURNAL_BITFLIP,), seed=0)
        assert any("flipped" in note for note in applied)
        journal = JobJournal(journal_path)
        assert journal.quarantined_lines == 1
        assert len(journal) == len(JOBS) - 1

    def test_missing_journal_is_a_noop(self, tmp_path):
        assert corrupt_journal(tmp_path / "nope", ALL_FAULTS, 0) == []


class TestRunChaos:
    def test_serial_exception_campaign_converges(self, tmp_path):
        report = run_chaos(num_instructions=600, warmup=300, seed=1,
                           faults=(FAULT_JOB_EXCEPTION,
                                   FAULT_JOURNAL_TRUNCATE),
                           workers=1, workdir=str(tmp_path))
        assert report.identical
        assert report.failures == []
        assert FAULT_JOB_EXCEPTION in report.injected.values()
        assert report.quarantined_lines == 1
        # The injected job took >1 attempt; everyone else took 1.
        assert any(n > 1 for n in report.attempts.values())
        assert report.as_dict()["stats_digest"] == report.stats_digest
        assert "bit-identical" in report.render()

    def test_full_campaign_with_worker_kills_converges(self, tmp_path):
        report = run_chaos(num_instructions=600, warmup=300, seed=0,
                           workers=2, hang_seconds=1.0, timeout=0.5,
                           workdir=str(tmp_path))
        assert report.identical
        assert report.failures == []
        assert sorted(report.injected.values()) == sorted(
            [FAULT_WORKER_KILL, FAULT_JOB_EXCEPTION, FAULT_HANG])
        assert report.pool_rebuilds >= 1  # the kill broke the pool
        assert report.retry_events >= 1
        assert report.quarantined_lines >= 1
        assert len(report.journal_corruption) == 2

    def test_campaign_is_reproducible(self, tmp_path):
        kwargs = dict(num_instructions=600, warmup=300, seed=3,
                      faults=(FAULT_JOB_EXCEPTION,), workers=1)
        one = run_chaos(workdir=str(tmp_path / "a"), **kwargs)
        two = run_chaos(workdir=str(tmp_path / "b"), **kwargs)
        assert one.stats_digest == two.stats_digest
        assert one.injected == two.injected
        assert one.attempts == two.attempts


class TestResultDigest:
    def test_digest_tracks_result_content(self):
        results = SerialExecutor().run(JOBS[:2])
        a, b = (results[job] for job in JOBS[:2])
        assert result_digest(a) == result_digest(a)
        assert result_digest(a) != result_digest(b)


class TestChaosCli:
    def test_cli_reports_and_exits_zero(self, capsys, tmp_path):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(["chaos", "--seed", "0",
                     "--faults", "job-exception,journal-bitflip",
                     "-n", "600", "--warmup", "300", "-j", "1",
                     "--workdir", str(tmp_path),
                     "--emit-json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        payload = json.loads(report_path.read_text())
        assert payload["identical"] is True
        assert payload["faults"] == ["job-exception", "journal-bitflip"]

    def test_cli_rejects_unknown_fault(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--faults", "gremlins"]) == 2
        assert "unknown fault" in capsys.readouterr().err
