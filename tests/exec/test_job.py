"""SimJob spec tests: hashing stability, pickling, validation."""

import dataclasses
import pickle

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.exec import SimJob, build_jobs


class TestJobId:
    def test_equal_specs_equal_ids(self):
        a = SimJob("gzip", "authen-then-commit", num_instructions=1000)
        b = SimJob("gzip", "authen-then-commit", num_instructions=1000)
        assert a == b
        assert a.job_id == b.job_id

    def test_id_is_16_hex_chars(self):
        job = SimJob("gzip", "decrypt-only")
        assert len(job.job_id) == 16
        int(job.job_id, 16)  # raises if not hex

    def test_every_field_feeds_the_id(self):
        base = SimJob("gzip", "decrypt-only", num_instructions=1000,
                      warmup=500, seed=7)
        variants = [
            SimJob("mcf", "decrypt-only", num_instructions=1000,
                   warmup=500, seed=7),
            SimJob("gzip", "authen-then-commit", num_instructions=1000,
                   warmup=500, seed=7),
            SimJob("gzip", "decrypt-only", num_instructions=2000,
                   warmup=500, seed=7),
            SimJob("gzip", "decrypt-only", num_instructions=1000,
                   warmup=600, seed=7),
            SimJob("gzip", "decrypt-only", num_instructions=1000,
                   warmup=500, seed=8),
            SimJob("gzip", "decrypt-only",
                   config=SimConfig().with_l2_size(1024 * 1024),
                   num_instructions=1000, warmup=500, seed=7),
        ]
        ids = {job.job_id for job in variants}
        assert base.job_id not in ids
        assert len(ids) == len(variants)

    def test_id_survives_pickle(self):
        job = SimJob("gzip", "authen-then-write", num_instructions=1234,
                     warmup=99, seed=3)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.job_id == job.job_id

    def test_known_id_is_stable_across_sessions(self):
        # Regression pin: the id is a content hash, so it must never
        # change for a fixed spec (checkpoints depend on it).  If this
        # fails, a config field was added/renamed -- bump JOURNAL_VERSION
        # and update the pin deliberately.
        job = SimJob("gzip", "decrypt-only", num_instructions=1000,
                     warmup=0, seed=2006)
        assert job.job_id == SimJob(
            "gzip", "decrypt-only", config=SimConfig(),
            num_instructions=1000, warmup=0, seed=2006).job_id


class TestJobSpec:
    def test_frozen(self):
        job = SimJob("gzip", "decrypt-only")
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.benchmark = "mcf"

    def test_seed_defaults_to_config_seed(self):
        assert SimJob("gzip", "decrypt-only").seed == SimConfig().seed
        assert SimJob("gzip", "decrypt-only", seed=42).seed == 42

    def test_trace_key_and_length(self):
        job = SimJob("gzip", "decrypt-only", num_instructions=1000,
                     warmup=500, seed=9)
        assert job.trace_length == 1500
        assert job.trace_key == ("gzip", 1500, 9)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            SimJob("gzip", "no-such-policy")

    def test_policy_objects_rejected(self):
        from repro.policies.registry import make_policy

        with pytest.raises(ConfigError, match="registry name"):
            SimJob("gzip", make_policy("decrypt-only"))

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(Exception):
            SimJob("doom3", "decrypt-only")

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            SimJob("gzip", "decrypt-only", num_instructions=-1)


class TestBuildJobs:
    def test_benchmark_major_deterministic_order(self):
        jobs = build_jobs(["gzip", "mcf"],
                          ["decrypt-only", "authen-then-commit"],
                          num_instructions=100)
        assert [(j.benchmark, j.policy) for j in jobs] == [
            ("gzip", "decrypt-only"), ("gzip", "authen-then-commit"),
            ("mcf", "decrypt-only"), ("mcf", "authen-then-commit"),
        ]

    def test_shared_config_and_seed(self):
        config = SimConfig().with_l2_size(1024 * 1024)
        jobs = build_jobs(["gzip"], ["decrypt-only"], config=config,
                          num_instructions=100, seed=5)
        assert jobs[0].config is config
        assert jobs[0].seed == 5


class TestDecorrelate:
    def test_off_by_default_and_id_preserved(self):
        plain = SimJob("gzip", "decrypt-only", num_instructions=1000,
                       warmup=0, seed=2006)
        assert plain.decorrelate is False
        assert plain.effective_seed == plain.seed
        # Historical job_ids must not change for decorrelate=False specs.
        assert plain.job_id == SimJob("gzip", "decrypt-only",
                                      num_instructions=1000, warmup=0,
                                      seed=2006).job_id

    def test_decorrelated_seed_is_stable_and_per_job(self):
        from repro.exec import stable_hash

        a = SimJob("gzip", "decrypt-only", seed=7, decorrelate=True)
        b = SimJob("gzip", "authen-then-commit", seed=7, decorrelate=True)
        assert a.effective_seed == 7 + stable_hash(a.job_id)
        assert a.effective_seed != b.effective_seed
        # Same spec -> same stream, on any machine (sha256, not hash()).
        assert a.effective_seed == SimJob("gzip", "decrypt-only", seed=7,
                                          decorrelate=True).effective_seed

    def test_decorrelate_feeds_id_and_trace_key(self):
        plain = SimJob("gzip", "decrypt-only", seed=7)
        split = SimJob("gzip", "decrypt-only", seed=7, decorrelate=True)
        assert plain.job_id != split.job_id
        assert plain.trace_key != split.trace_key
        assert split.trace_key == ("gzip", split.trace_length,
                                   split.effective_seed)

    def test_build_jobs_passthrough(self):
        jobs = build_jobs(["gzip"], ["decrypt-only"],
                          num_instructions=100, decorrelate=True)
        assert all(job.decorrelate for job in jobs)

    def test_decorrelated_runs_still_simulate(self):
        from repro.exec import SerialExecutor

        jobs = build_jobs(["gzip"], ["decrypt-only"],
                          num_instructions=600, warmup=300,
                          decorrelate=True)
        results = SerialExecutor().run(jobs)
        assert results[jobs[0]].cycles > 0
