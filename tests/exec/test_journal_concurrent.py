"""JobJournal v2 under concurrent appenders (the split-journal case).

Two dist workers sharing one ``--host-id`` append to the *same*
journal segment.  The v2 append path writes each CRC-sealed record as
one ``os.write`` on an ``O_APPEND`` fd, so concurrent appends
interleave at line granularity: a reload must see every record intact,
and only a genuinely torn line (a mid-write kill) may be quarantined.
"""

import multiprocessing
import os
import socket

from repro.exec import SerialExecutor, build_jobs
from repro.exec.chaos import result_digest
from repro.exec.retry import STATUS_RESUMED
from repro.sim.checkpoint import JobJournal, parse_record, tmp_suffix

N = 800
WARMUP = 400


def _jobs_for(benchmark):
    return build_jobs([benchmark],
                      ["decrypt-only", "authen-then-commit",
                       "authen-then-issue"],
                      num_instructions=N, warmup=WARMUP)


def _append_results(path, benchmark, barrier):
    """Child process: run one benchmark's jobs, append each result."""
    journal = JobJournal(path)
    jobs = _jobs_for(benchmark)
    results = SerialExecutor().run(jobs)
    barrier.wait()   # line both writers up so their appends interleave
    for job in jobs:
        journal.record(job, results[job])


def _fill_concurrently(path):
    barrier = multiprocessing.Barrier(2)
    writers = [multiprocessing.Process(target=_append_results,
                                       args=(path, benchmark, barrier))
               for benchmark in ("gzip", "mcf")]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=120)
        assert writer.exitcode == 0
    return _jobs_for("gzip") + _jobs_for("mcf")


class TestConcurrentAppend:
    def test_no_record_loss_across_two_writers(self, tmp_path):
        path = str(tmp_path / "shared.journal")
        jobs = _fill_concurrently(path)
        journal = JobJournal(path)
        assert journal.quarantined_lines == 0
        assert len(journal) == len(jobs)
        for job in jobs:
            assert job.job_id in journal

    def test_torn_tail_quarantines_only_the_tear(self, tmp_path):
        path = str(tmp_path / "shared.journal")
        jobs = _fill_concurrently(path)
        with open(path, "ab") as handle:
            handle.write(b'{"journal_version": 2, "job_id": "torn')
        journal = JobJournal(path)
        assert journal.quarantined_lines == 1
        assert len(journal) == len(jobs)
        assert os.path.exists(journal.rej_path)

    def test_compact_then_resume_bit_identical(self, tmp_path):
        path = str(tmp_path / "shared.journal")
        jobs = _fill_concurrently(path)
        reference = {job.job_id: result_digest(result)
                     for job, result in SerialExecutor().run(jobs).items()}
        journal = JobJournal(path)
        dropped = journal.compact(keep_ids={job.job_id for job in jobs})
        assert dropped == 0
        assert len(journal) == len(jobs)
        healer = SerialExecutor()
        healed = healer.run(jobs, journal=JobJournal(path))
        resumed = sum(1 for outcome in healer.last_outcomes.values()
                      if outcome.status == STATUS_RESUMED)
        assert resumed == len(jobs)   # nothing re-simulated
        for job in jobs:
            assert result_digest(healed[job]) == reference[job.job_id]


class TestTmpSuffix:
    def test_names_host_pid_and_counts_up(self):
        first, second = tmp_suffix(), tmp_suffix()
        assert first != second
        assert socket.gethostname() in first
        assert str(os.getpid()) in first

    def test_parse_record_round_trip(self, tmp_path):
        path = str(tmp_path / "j.journal")
        job = _jobs_for("gzip")[0]
        result = SerialExecutor().run([job])[job]
        JobJournal(path).record(job, result)
        with open(path) as handle:
            raw = handle.readline().strip()
        record, reason = parse_record(raw)
        assert reason is None
        assert record["job_id"] == job.job_id
        bad, why = parse_record(raw[:-5])
        assert bad is None and why
