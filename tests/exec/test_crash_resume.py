"""Crash/resume tests: real SIGKILLs against driver and workers.

The journal's contract is that a hard kill -- of a worker process or of
the whole driver -- costs at most the in-flight jobs: rerunning the same
sweep against the same journal file resumes the completed jobs from disk
and re-simulates only the rest, bit-identically.
"""

import json
import os
import signal
import subprocess
import sys

from repro.exec import ParallelExecutor, SerialExecutor, build_jobs
from repro.exec.chaos import FAULT_WORKER_KILL, ChaosPlan, _install_in_worker
from repro.exec.retry import RETRY_THEN_SKIP, STATUS_RESUMED, FailurePolicy
from repro.sim.checkpoint import JobJournal

JOBS = build_jobs(["gzip"], ["decrypt-only", "authen-then-commit",
                             "authen-then-issue"],
                  num_instructions=600, warmup=300)

# A driver that SIGKILLs itself after its first job completes -- the
# harshest interruption a sweep can see (no atexit, no flush beyond what
# the journal already forced).
_DRIVER = """
import os, signal, sys
from repro.exec import SerialExecutor, build_jobs
from repro.sim.checkpoint import JobJournal

jobs = build_jobs(["gzip"], ["decrypt-only", "authen-then-commit",
                             "authen-then-issue"],
                  num_instructions=600, warmup=300)

def die_after_first(job, result, done, total):
    if done >= 1:
        os.kill(os.getpid(), signal.SIGKILL)

SerialExecutor().run(jobs, journal=JobJournal(sys.argv[1]),
                     progress=die_after_first)
raise SystemExit("driver outlived its own SIGKILL")
"""


class TestDriverCrashResume:
    def test_sigkilled_driver_resumes_bit_identical(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), "..", "..", "src")])
        proc = subprocess.run(
            [sys.executable, "-c", _DRIVER, str(path)],
            env=env, capture_output=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL

        # The kill landed after >= 1 completed job; the journal kept it.
        journal = JobJournal(path)
        completed = len(journal)
        assert 1 <= completed < len(JOBS)
        assert journal.quarantined_lines == 0  # flush beat the kill

        resumed = SerialExecutor()
        results = resumed.run(JOBS, journal=journal)
        statuses = [resumed.last_outcomes[j.job_id].status for j in JOBS]
        assert statuses.count(STATUS_RESUMED) == completed

        clean = SerialExecutor().run(JOBS)
        for job in JOBS:
            assert results[job].cycles == clean[job].cycles
            assert results[job].stats.as_dict() == \
                clean[job].stats.as_dict()

    def test_torn_tail_after_kill_is_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(JOBS[:2], journal=JobJournal(path))
        # Replay a kill mid-append: binary-truncate the last record.
        data = path.read_bytes().rstrip(b"\n")
        cut = data.rfind(b"\n") + 1
        path.write_bytes(data[:cut + (len(data) - cut) // 2])

        journal = JobJournal(path)
        assert journal.quarantined_lines == 1
        assert len(journal) == 1
        rej = json.loads(
            (tmp_path / "journal.jsonl.rej").read_text().splitlines()[0])
        assert "unparseable" in rej["reason"]

        results = SerialExecutor().run(JOBS, journal=journal)
        clean = SerialExecutor().run(JOBS)
        for job in JOBS:
            assert results[job].cycles == clean[job].cycles


class TestWorkerCrashResume:
    def test_sigkilled_worker_heals_and_journals(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = ChaosPlan(0, {JOBS[1].job_id: FAULT_WORKER_KILL})
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=4,
                               backoff_base=0.0, jitter=0.0)
        with ParallelExecutor(2, initializer=_install_in_worker,
                              initargs=(plan,)) as executor:
            results = executor.run(JOBS, journal=JobJournal(path),
                                   failure_policy=policy)
            assert executor.rebuilds >= 1
        assert set(results) == set(JOBS)
        assert executor.failures == {}

        # Everything the faulty run journaled resumes bit-identically.
        resumed = SerialExecutor()
        after = resumed.run(JOBS, journal=JobJournal(path))
        for job in JOBS:
            assert resumed.last_outcomes[job.job_id].status == \
                STATUS_RESUMED
            assert after[job].cycles == results[job].cycles
            assert after[job].stats.as_dict() == \
                results[job].stats.as_dict()
