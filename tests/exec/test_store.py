"""Artifact-store tests: round trips, bit-identity, corruption, locks."""

import json
import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.config import SimConfig
from repro.cpu.prepass import build_prepass
from repro.exec import (
    ArtifactStore,
    ParallelExecutor,
    SerialExecutor,
    TraceCache,
    build_job_groups,
    build_jobs,
    execute_job,
    set_active_store,
)
from repro.exec.chaos import result_digest
from repro.exec.store import STORE_ENV, code_fingerprint, default_store_path
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace

N = 1200
WARMUP = 600
JOBS = build_jobs(["gzip", "mcf"], ["decrypt-only", "authen-then-commit"],
                  num_instructions=N, warmup=WARMUP)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def active(store):
    """Install ``store`` process-wide for the test, restore after."""
    previous = set_active_store(store)
    yield store
    set_active_store(previous)


def _trace(benchmark="gzip", total=N + WARMUP, seed=12345):
    return generate_trace(get_profile(benchmark), total, seed=seed)


class TestTraceRoundTrip:
    def test_columns_bit_identical(self, store):
        trace = _trace()
        assert store.save_trace(trace, "gzip", len(trace), 12345)
        loaded = store.load_trace("gzip", len(trace), 12345)
        assert loaded is not None
        want, got = trace.packed(), loaded.packed()
        assert list(got.pcs) == list(want.pcs)
        assert list(got.ops) == list(want.ops)
        assert list(got.dests) == list(want.dests)
        assert list(got.addrs) == list(want.addrs)
        assert [bool(m) for m in got.mispredicts] == \
            [bool(m) for m in want.mispredicts]
        assert len(got.srcss) == len(want.srcss)
        assert [tuple(s) for s in got.srcss] == \
            [tuple(s) for s in want.srcss]
        assert loaded.name == trace.name
        assert loaded.footprint_bytes == trace.footprint_bytes
        assert len(loaded) == len(trace)

    def test_miss_on_absent_key(self, store):
        assert store.load_trace("gzip", 999, 1) is None
        assert store.counters["trace_misses"] == 1

    def test_distinct_keys_distinct_entries(self, store):
        trace = _trace()
        store.save_trace(trace, "gzip", len(trace), 1)
        assert store.load_trace("gzip", len(trace), 2) is None
        assert store.load_trace("mcf", len(trace), 1) is None
        assert store.load_trace("gzip", len(trace), 1) is not None


class TestPrepassRoundTrip:
    def test_columns_and_scalars_bit_identical(self, store):
        config = SimConfig()
        trace = _trace(total=N + WARMUP, seed=config.seed)
        built = build_prepass(trace, config, warmup=WARMUP)
        assert store.save_prepass(built, "gzip", len(trace), config.seed,
                                  config, WARMUP)
        loaded = store.load_prepass("gzip", len(trace), config.seed,
                                    config, WARMUP, trace.packed())
        assert loaded is not None
        from repro.exec.store import _PREPASS_COLUMNS, _PREPASS_SCALARS

        for name in _PREPASS_COLUMNS:
            assert list(getattr(loaded, name)) == \
                list(getattr(built, name)), name
        assert list(loaded.if_flags) == list(built.if_flags)
        for name in _PREPASS_SCALARS:
            assert getattr(loaded, name) == getattr(built, name), name
        assert loaded.miss_summary == built.miss_summary
        assert loaded.packed is trace.packed()

    def test_replay_identical_through_loaded_prepass(self, store):
        from repro.cpu.shared_kernel import replay_policy
        from repro.policies import make_policy

        config = SimConfig()
        trace = _trace(total=N + WARMUP, seed=config.seed)
        built = build_prepass(trace, config, warmup=WARMUP)
        store.save_prepass(built, "gzip", len(trace), config.seed,
                           config, WARMUP)
        loaded = store.load_prepass("gzip", len(trace), config.seed,
                                    config, WARMUP, trace.packed())
        policy = make_policy("authen-then-commit")
        want = replay_policy(built, policy, config)
        got = replay_policy(loaded, make_policy("authen-then-commit"),
                            config)
        assert got.cycles == want.cycles
        assert got.stats.as_dict() == want.stats.as_dict()


class TestColdWarmIdentity:
    def test_serial_cold_warm_no_store_identical(self, active):
        previous = set_active_store(None)
        try:
            reference = SerialExecutor(cache=TraceCache()).run(JOBS)
        finally:
            set_active_store(previous)
        cold = SerialExecutor(cache=TraceCache()).run(JOBS)
        warm = SerialExecutor(cache=TraceCache()).run(JOBS)
        for job in JOBS:
            want = result_digest(reference[job])
            assert result_digest(cold[job]) == want
            assert result_digest(warm[job]) == want
            assert cold[job].stats.as_dict() == \
                warm[job].stats.as_dict()

    def test_warm_jobs_short_circuit(self, active):
        SerialExecutor(cache=TraceCache()).run(JOBS)
        warm = SerialExecutor(cache=TraceCache())
        warm.run(JOBS)
        assert all(outcome.store_hit
                   for outcome in warm.last_outcomes.values())

    def test_parallel_warm_identical(self, active):
        cold = SerialExecutor(cache=TraceCache()).run(JOBS)
        with ParallelExecutor(2) as executor:
            warm = executor.run(JOBS)
        for job in JOBS:
            assert result_digest(warm[job]) == result_digest(cold[job])

    def test_grouped_cold_warm_identical(self, active):
        groups = build_job_groups(["gzip", "mcf"],
                                  ["decrypt-only", "authen-then-commit",
                                   "authen-then-issue"],
                                  num_instructions=N, warmup=WARMUP)
        previous = set_active_store(None)
        try:
            reference = SerialExecutor(cache=TraceCache()).run(groups)
        finally:
            set_active_store(previous)
        cold = SerialExecutor(cache=TraceCache()).run(groups)
        warm_exec = SerialExecutor(cache=TraceCache())
        warm = warm_exec.run(groups)
        ref = {job.job_id: result_digest(result)
               for job, result in reference.items()}
        for job, result in cold.items():
            assert result_digest(result) == ref[job.job_id]
        for job, result in warm.items():
            assert result_digest(result) == ref[job.job_id]
        assert all(outcome.store_hit
                   for outcome in warm_exec.last_outcomes.values())
        # Grouped cold run populates the prepass tier too.
        assert active.stats()["tiers"]["prepass"]["entries"] >= 1


class TestResultShortCircuit:
    def test_accounting_marks_store_hit(self, active):
        job = JOBS[0]
        cold = execute_job(job, cache=TraceCache())
        assert cold.accounting["store_hit"] is False
        warm = execute_job(job, cache=TraceCache())
        assert warm.accounting["store_hit"] is True
        assert warm.accounting["tracegen_seconds"] == 0.0
        assert warm.accounting["cache_hit"] is None
        assert result_digest(warm) == result_digest(cold)
        assert warm.metrics is not None
        assert warm.metrics.as_dict() == cold.metrics.as_dict()

    def test_fresh_accounting_not_recorded_accounting(self, active):
        job = JOBS[0]
        cold = execute_job(job, cache=TraceCache())
        warm = execute_job(job, cache=TraceCache())
        # wall time describes *this* execution, not the recorded one.
        assert warm.accounting["wall_seconds"] <= \
            cold.accounting["wall_seconds"]


class TestCorruption:
    def test_truncated_trace_quarantined_and_regenerated(self, store):
        previous = set_active_store(store)
        try:
            cold = SerialExecutor(cache=TraceCache()).run(JOBS)
            path = sorted(p for p, _ in store._entries("traces"))[0]
            with open(path, "r+b") as handle:
                handle.truncate(os.path.getsize(path) // 2)
            # Also wipe results so re-execution really re-reads traces.
            for rpath, _ in list(store._entries("results")):
                os.unlink(rpath)
            healed = SerialExecutor(cache=TraceCache()).run(JOBS)
        finally:
            set_active_store(previous)
        assert store.counters["quarantined"] >= 1
        assert os.path.exists(
            os.path.join(store.root, "quarantine",
                         os.path.basename(path)))
        rej = os.path.join(store.root, "quarantine.rej")
        assert os.path.exists(rej)
        with open(rej) as handle:
            reasons = [json.loads(line) for line in handle]
        assert any(r["entry"] == os.path.basename(path) for r in reasons)
        for job in JOBS:
            assert result_digest(healed[job]) == result_digest(cold[job])
        # The entry was republished by the heal run.
        assert os.path.exists(path)

    def test_bitflipped_result_quarantined(self, store):
        previous = set_active_store(store)
        try:
            job = JOBS[0]
            cold = execute_job(job, cache=TraceCache())
            path = os.path.join(store.root, "results",
                                store.result_name(job) + ".json")
            body = bytearray(open(path, "rb").read())
            body[len(body) // 2] ^= 0x01
            with open(path, "wb") as handle:
                handle.write(bytes(body))
            healed = execute_job(job, cache=TraceCache())
        finally:
            set_active_store(previous)
        assert healed.accounting["store_hit"] is False
        assert store.counters["quarantined"] == 1
        assert result_digest(healed) == result_digest(cold)

    def test_garbage_file_is_a_miss_not_a_crash(self, store):
        name = store.trace_name("gzip", N + WARMUP, 7)
        path = os.path.join(store.root, "traces", name)
        with open(path, "wb") as handle:
            handle.write(b"not a store entry at all")
        assert store.load_trace("gzip", N + WARMUP, 7) is None
        assert store.counters["quarantined"] == 1

    def test_verify_quarantines_corruption_counts_stale(self, store):
        trace = _trace()
        store.save_trace(trace, "gzip", len(trace), 1)
        store.save_trace(trace, "gzip", len(trace), 2)
        paths = sorted(p for p, _ in store._entries("traces"))
        with open(paths[0], "r+b") as handle:
            handle.truncate(10)
        report = store.verify()
        assert report["checked"] == 2
        assert report["corrupt"] == 1
        assert report["ok"] == 1
        assert store.stats()["quarantined_entries"] == 1


class TestFingerprintInvalidation:
    def test_changed_fingerprint_misses(self, store, monkeypatch):
        trace = _trace()
        store.save_trace(trace, "gzip", len(trace), 1)
        assert store.load_trace("gzip", len(trace), 1) is not None
        monkeypatch.setattr("repro.exec.store.code_fingerprint",
                            lambda kind: "f" * 16)
        # New fingerprint -> new content address -> clean miss; the old
        # entry is untouched (gc ages it out), never misread.
        assert store.load_trace("gzip", len(trace), 1) is None
        assert store.counters["quarantined"] == 0
        assert store.stats()["tiers"]["traces"]["entries"] == 1

    def test_result_fingerprint_in_key(self, store, monkeypatch):
        job = JOBS[0]
        previous = set_active_store(store)
        try:
            execute_job(job, cache=TraceCache())
            warm = execute_job(job, cache=TraceCache())
            assert warm.accounting["store_hit"] is True
            monkeypatch.setattr("repro.exec.store.code_fingerprint",
                                lambda kind: "0" * 16)
            invalidated = execute_job(job, cache=TraceCache())
        finally:
            set_active_store(previous)
        assert invalidated.accounting["store_hit"] is False
        assert result_digest(invalidated) == result_digest(warm)

    def test_fingerprint_tracks_source_bytes(self):
        assert code_fingerprint("trace") == code_fingerprint("trace")
        assert code_fingerprint("trace") != code_fingerprint("prepass")
        assert len(code_fingerprint("result")) == 16


class TestSingleFlight:
    def test_concurrent_readers_coalesce_to_one_generation(
            self, store, monkeypatch):
        calls = []
        real = generate_trace

        def counting(profile, length, seed=0):
            calls.append(threading.get_ident())
            time.sleep(0.05)
            return real(profile, length, seed=seed)

        monkeypatch.setattr("repro.exec.cache.generate_trace", counting)
        results = {}

        def reader(index):
            cache = TraceCache(store=store)
            trace = cache.get("gzip", N + WARMUP, 9)
            results[index] = list(trace.packed().pcs)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert len({tuple(pcs) for pcs in results.values()}) == 1
        assert store.counters["lock_waits"] >= 1

    def test_waiter_rechecks_after_lock(self, store):
        trace = _trace()
        name = store.trace_name("gzip", len(trace), 3)
        with store.single_flight("traces", name) as leader:
            assert leader
            # Leader publishes while holding the lock.
            store.save_trace(trace, "gzip", len(trace), 3)
        # A late-coming process acquires and finds the entry.
        with store.single_flight("traces", name) as leader:
            assert leader
            assert store.load_trace("gzip", len(trace), 3) is not None

    def test_stale_lock_from_dead_pid_is_broken(self, store):
        proc = multiprocessing.Process(target=_noop)
        proc.start()
        proc.join()
        lock_path = os.path.join(store.root, "locks", "traces-xyz.lock")
        with open(lock_path, "w") as handle:
            json.dump({"pid": proc.pid, "created": time.time()}, handle)
        with store.single_flight("traces", "xyz") as leader:
            assert leader
        assert store.counters["lock_breaks"] == 1
        assert not os.path.exists(lock_path)

    def test_aged_lock_from_live_pid_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", stale_lock_seconds=0.05)
        lock_path = os.path.join(store.root, "locks", "traces-old.lock")
        with open(lock_path, "w") as handle:
            json.dump({"pid": os.getpid(), "created": time.time()},
                      handle)
        old = time.time() - 10
        os.utime(lock_path, (old, old))
        with store.single_flight("traces", "old") as leader:
            assert leader
        assert store.counters["lock_breaks"] == 1

    def test_lock_payload_names_host_and_pid(self, store):
        with store.single_flight("traces", "payload") as leader:
            assert leader
            lock_path = os.path.join(store.root, "locks",
                                     "traces-payload.lock")
            with open(lock_path) as handle:
                payload = json.load(handle)
        assert payload["pid"] == os.getpid()
        assert payload["host"] == socket.gethostname()

    def test_foreign_host_lock_ignores_pid_liveness(self, tmp_path):
        # Pid numbers are per-host namespaces: a pid that is dead
        # *here* says nothing about the owner on another host.  A
        # fresh foreign lock must survive until the age timeout.
        store = ArtifactStore(tmp_path / "s", lock_timeout=0.05)
        proc = multiprocessing.Process(target=_noop)
        proc.start()
        proc.join()
        lock_path = os.path.join(store.root, "locks", "traces-far.lock")
        with open(lock_path, "w") as handle:
            json.dump({"pid": proc.pid, "host": "somewhere-else",
                       "created": time.time()}, handle)
        with store.single_flight("traces", "far") as leader:
            assert not leader      # waited out, degraded to solo
        assert store.counters["lock_breaks"] == 0
        assert os.path.exists(lock_path)
        os.unlink(lock_path)

    def test_foreign_host_lock_is_broken_by_age(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", stale_lock_seconds=0.05)
        lock_path = os.path.join(store.root, "locks",
                                 "traces-faraged.lock")
        with open(lock_path, "w") as handle:
            json.dump({"pid": 1, "host": "somewhere-else",
                       "created": time.time()}, handle)
        old = time.time() - 10
        os.utime(lock_path, (old, old))
        with store.single_flight("traces", "faraged") as leader:
            assert leader
        assert store.counters["lock_breaks"] == 1

    def test_local_dead_pid_lock_is_broken_immediately(self, store):
        proc = multiprocessing.Process(target=_noop)
        proc.start()
        proc.join()
        lock_path = os.path.join(store.root, "locks", "traces-home.lock")
        with open(lock_path, "w") as handle:
            json.dump({"pid": proc.pid, "host": socket.gethostname(),
                       "created": time.time()}, handle)
        with store.single_flight("traces", "home") as leader:
            assert leader
        assert store.counters["lock_breaks"] == 1
        assert not os.path.exists(lock_path)

    def test_wait_timeout_degrades_to_solo_generation(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", lock_timeout=0.05)
        lock_path = os.path.join(store.root, "locks", "traces-held.lock")
        with open(lock_path, "w") as handle:
            json.dump({"pid": os.getpid(), "created": time.time()},
                      handle)
        started = time.monotonic()
        with store.single_flight("traces", "held") as leader:
            assert not leader  # advisory: caller generates anyway
        assert time.monotonic() - started < 5.0
        assert store.counters["lock_waits"] == 1
        os.unlink(lock_path)


class TestGc:
    def test_evicts_least_recently_used_first(self, store):
        trace = _trace()
        for seed in (1, 2, 3):
            store.save_trace(trace, "gzip", len(trace), seed)
        paths = {seed: os.path.join(
            store.root, "traces", store.trace_name("gzip", len(trace),
                                                   seed))
            for seed in (1, 2, 3)}
        now = time.time()
        for age, seed in ((300, 1), (200, 2), (100, 3)):
            os.utime(paths[seed], (now - age, now - age))
        size = os.path.getsize(paths[1])
        report = store.gc(max_bytes=size * 2)
        assert report["evicted"] == 1
        assert not os.path.exists(paths[1])      # oldest went first
        assert os.path.exists(paths[2])
        assert os.path.exists(paths[3])
        assert report["kept"] == 2

    def test_load_refreshes_recency(self, store):
        trace = _trace()
        for seed in (1, 2):
            store.save_trace(trace, "gzip", len(trace), seed)
        paths = {seed: os.path.join(
            store.root, "traces", store.trace_name("gzip", len(trace),
                                                   seed))
            for seed in (1, 2)}
        old = time.time() - 500
        os.utime(paths[2], (old, old))
        os.utime(paths[1], (old - 500, old - 500))
        # Touching entry 1 via a load makes entry 2 the LRU victim.
        assert store.load_trace("gzip", len(trace), 1) is not None
        store.gc(max_bytes=os.path.getsize(paths[1]))
        assert os.path.exists(paths[1])
        assert not os.path.exists(paths[2])

    def test_gc_to_zero_empties_the_store(self, store):
        trace = _trace()
        store.save_trace(trace, "gzip", len(trace), 1)
        path = os.path.join(
            store.root, "traces", store.trace_name("gzip", len(trace), 1))
        old = time.time() - store.stale_lock_seconds - 1
        os.utime(path, (old, old))
        report = store.gc(max_bytes=0)
        assert report["evicted"] == 1
        assert report["kept"] == 0
        assert report["pinned"] == 0
        assert store.stats()["total_bytes"] == 0

    def test_gc_pins_recently_touched_entries(self, store):
        # A fresh mtime means a hit just refreshed the entry -- a
        # concurrent single-flight waiter that observed that hit may be
        # about to open() it, so gc must not unlink it even when the
        # store is over budget.
        trace = _trace()
        for seed in (1, 2):
            store.save_trace(trace, "gzip", len(trace), seed)
        paths = {seed: os.path.join(
            store.root, "traces", store.trace_name("gzip", len(trace),
                                                   seed))
            for seed in (1, 2)}
        old = time.time() - store.stale_lock_seconds - 1
        os.utime(paths[1], (old, old))
        report = store.gc(max_bytes=0)
        assert report["evicted"] == 1
        assert not os.path.exists(paths[1])
        assert os.path.exists(paths[2])        # fresh entry survives gc(0)
        assert report["pinned"] == 1
        assert report["kept"] == 1
        assert report["kept_bytes"] == os.path.getsize(paths[2])


class TestStatsAndEnv:
    def test_stats_shape(self, store):
        trace = _trace()
        store.save_trace(trace, "gzip", len(trace), 1)
        stats = store.stats()
        assert stats["tiers"]["traces"]["entries"] == 1
        assert stats["tiers"]["traces"]["bytes"] > 0
        assert stats["total_bytes"] == stats["tiers"]["traces"]["bytes"]
        assert stats["counters"]["bytes_written"] > 0
        assert stats["quarantined_entries"] == 0

    def test_default_store_path_prefers_env(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "/tmp/elsewhere")
        assert default_store_path() == "/tmp/elsewhere"
        monkeypatch.delenv(STORE_ENV)
        assert default_store_path().endswith(os.path.join("repro",
                                                          "store"))

    def test_set_active_store_returns_previous(self, store):
        previous = set_active_store(store)
        try:
            from repro.exec.store import active_store

            assert active_store() is store
        finally:
            set_active_store(previous)


def _noop():
    """Exit immediately: its reaped pid proves a lock owner is dead."""


class TestIterResults:
    def test_lists_sealed_records(self, store):
        job = JOBS[0]
        assert store.save_result(job, execute_job(job))
        [row] = list(store.iter_results())
        assert row["job_id"] == job.job_id
        assert row["benchmark"] == job.benchmark
        assert row["policy"] == job.policy
        assert row["seed"] == job.seed
        assert row["warmup"] == job.warmup
        assert row["cycles"] > 0
        assert row["ipc"] > 0
        assert row["current"] is True
        assert row["mtime"] > 0

    def test_skips_corrupt_records(self, store):
        job = JOBS[0]
        assert store.save_result(job, execute_job(job))
        path = store._path("results", store.result_name(job) + ".json")
        with open(path, "a") as handle:
            handle.write("garbage")
        assert list(store.iter_results()) == []

    def test_stale_fingerprints_filtered_unless_asked(self, store):
        from repro.sim.checkpoint import _record_crc

        job = JOBS[0]
        assert store.save_result(job, execute_job(job))
        path = store._path("results", store.result_name(job) + ".json")
        with open(path) as handle:
            record = json.load(handle)
        record["fingerprint"] = "stale"
        record.pop("crc32")
        record["crc32"] = _record_crc(record)
        with open(path, "w") as handle:
            json.dump(record, handle)
        assert list(store.iter_results()) == []
        [row] = list(store.iter_results(current_only=False))
        assert row["current"] is False
