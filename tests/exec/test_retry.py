"""Failure-policy tests: retries, timeouts, skip/fail semantics."""

import pytest

from repro.errors import ConfigError, JobTimeoutError
from repro.exec import (
    FAIL_FAST,
    RETRY_THEN_SKIP,
    SKIP_AND_REPORT,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RESUMED,
    FailurePolicy,
    SerialExecutor,
    build_jobs,
    set_attempt_hook,
)
from repro.obs import MemorySink, Tracer
from repro.obs.events import JOB_FAILED, JOB_RETRY
from repro.sim.checkpoint import JobJournal

JOBS = build_jobs(["gzip"], ["decrypt-only", "authen-then-commit"],
                  num_instructions=600, warmup=300)


class Boom(RuntimeError):
    """Deterministic injected failure."""


class FailFirst:
    """Attempt hook: fail the first ``n`` attempts of chosen job_ids."""

    def __init__(self, n, job_ids=None):
        self.n = n
        self.job_ids = set(job_ids) if job_ids is not None else None
        self.calls = []

    def __call__(self, job, attempt):
        if self.job_ids is not None and job.job_id not in self.job_ids:
            return
        self.calls.append((job.job_id, attempt))
        if attempt <= self.n:
            raise Boom("injected failure on attempt %d" % attempt)


@pytest.fixture
def hook():
    """Install-and-restore wrapper around set_attempt_hook."""
    installed = []

    def install(fn):
        installed.append(set_attempt_hook(fn))
        return fn

    yield install
    while installed:
        set_attempt_hook(installed.pop())


class TestFailurePolicyValidation:
    def test_defaults_are_fail_fast_single_attempt(self):
        policy = FailurePolicy()
        assert policy.mode == FAIL_FAST
        assert policy.timeout is None
        assert not policy.should_retry(1)

    @pytest.mark.parametrize("kwargs", [
        {"mode": "never-heard-of-it"},
        {"max_attempts": 0},
        {"timeout": 0},
        {"timeout": -1.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FailurePolicy(**kwargs)

    def test_should_retry_only_in_retry_mode_below_cap(self):
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not FailurePolicy(mode=SKIP_AND_REPORT).should_retry(1)


class TestBackoff:
    def test_deterministic_and_bounded(self):
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, backoff_base=0.1,
                               backoff_factor=2.0, backoff_max=0.3,
                               jitter=0.5, jitter_seed=7)
        first = policy.backoff("abc", 1)
        assert first == policy.backoff("abc", 1)  # same inputs, same delay
        assert 0.1 <= first <= 0.15
        # Growth is capped at backoff_max (plus its jitter share).
        assert policy.backoff("abc", 9) <= 0.3 * 1.5
        # Different jobs and attempts jitter differently.
        assert policy.backoff("abc", 2) != policy.backoff("abd", 2)

    def test_zero_jitter_is_pure_exponential(self):
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, backoff_base=0.05,
                               backoff_factor=2.0, backoff_max=10.0,
                               jitter=0.0)
        assert policy.backoff("x", 1) == 0.05
        assert policy.backoff("x", 2) == 0.1
        assert policy.backoff("x", 3) == 0.2


class TestSerialFailurePolicy:
    def test_fail_fast_propagates_and_records(self, hook):
        hook(FailFirst(99, job_ids={JOBS[0].job_id}))
        executor = SerialExecutor()
        with pytest.raises(Boom):
            executor.run(JOBS)
        outcome = executor.last_outcomes[JOBS[0].job_id]
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 1

    def test_skip_and_report_continues_past_failure(self, hook):
        hook(FailFirst(99, job_ids={JOBS[0].job_id}))
        executor = SerialExecutor()
        results = executor.run(
            JOBS, failure_policy=FailurePolicy(mode=SKIP_AND_REPORT))
        assert JOBS[0] not in results
        assert JOBS[1] in results
        assert set(executor.failures) == {JOBS[0].job_id}

    def test_retry_then_skip_heals_transient_failure(self, hook):
        fails = hook(FailFirst(2))
        executor = SerialExecutor()
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=4,
                               backoff_base=0.0, jitter=0.0)
        results = executor.run(JOBS, failure_policy=policy)
        assert set(results) == set(JOBS)
        for job in JOBS:
            outcome = executor.last_outcomes[job.job_id]
            assert outcome.status == STATUS_OK
            assert outcome.attempts == 3
        # Each job saw exactly attempts 1..3.
        for job in JOBS:
            assert [a for j, a in fails.calls if j == job.job_id] == \
                [1, 2, 3]

    def test_retry_exhaustion_skips_and_reports(self, hook):
        hook(FailFirst(99, job_ids={JOBS[0].job_id}))
        sink = MemorySink()
        executor = SerialExecutor()
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=3,
                               backoff_base=0.0, jitter=0.0)
        results = executor.run(JOBS, tracer=Tracer([sink]),
                               failure_policy=policy)
        assert JOBS[0] not in results
        outcome = executor.failures[JOBS[0].job_id]
        assert outcome.attempts == 3
        assert "Boom" in outcome.error
        retries = [e for e in sink.events if e.kind == JOB_RETRY]
        failed = [e for e in sink.events if e.kind == JOB_FAILED]
        assert len(retries) == 2  # attempts 1 and 2 retried, 3 terminal
        assert len(failed) == 1
        assert failed[0].args["job_id"] == JOBS[0].job_id

    def test_timeout_bounds_one_attempt(self, hook):
        def hang(job, attempt):
            if job.job_id == JOBS[0].job_id and attempt == 1:
                import time

                time.sleep(5.0)

        hook(hang)
        executor = SerialExecutor()
        policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=2,
                               timeout=0.2, backoff_base=0.0, jitter=0.0)
        results = executor.run(JOBS, failure_policy=policy)
        assert set(results) == set(JOBS)  # attempt 2 ran unhindered
        assert executor.last_outcomes[JOBS[0].job_id].attempts == 2

    def test_timeout_exhaustion_is_a_job_timeout_error(self, hook):
        def hang(job, attempt):
            import time

            time.sleep(5.0)

        hook(hang)
        executor = SerialExecutor()
        with pytest.raises(JobTimeoutError):
            executor.run(JOBS[:1],
                         failure_policy=FailurePolicy(timeout=0.2))

    def test_resumed_jobs_report_zero_attempts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        SerialExecutor().run(JOBS, journal=JobJournal(path))
        executor = SerialExecutor()
        executor.run(JOBS, journal=JobJournal(path))
        for job in JOBS:
            outcome = executor.last_outcomes[job.job_id]
            assert outcome.status == STATUS_RESUMED
            assert outcome.attempts == 0


class TestAttemptDeadlineNesting:
    """A nested deadline must re-arm the outer timer's remainder on
    exit -- restoring only the handler used to silently disarm the
    outer deadline."""

    def test_outer_deadline_survives_inner_block(self):
        import time

        from repro.exec.retry import attempt_deadline

        with pytest.raises(JobTimeoutError):
            with attempt_deadline(0.2):
                with attempt_deadline(10.0):
                    pass  # generous inner deadline, exits untriggered
                # The outer 0.2s must still be armed here.
                time.sleep(1.0)

    def test_expired_inner_leaves_outer_rearmed_then_clean(self):
        import signal
        import time

        from repro.exec.retry import attempt_deadline

        with attempt_deadline(10.0):
            with pytest.raises(JobTimeoutError):
                with attempt_deadline(0.05):
                    time.sleep(1.0)
            # Outer remainder re-armed by the inner exit path.
            armed, _ = signal.getitimer(signal.ITIMER_REAL)
            assert armed > 0
        # Both exited: nothing may still be ticking.
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_single_deadline_disarms_on_exit(self):
        import signal

        from repro.exec.retry import attempt_deadline

        with attempt_deadline(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
