"""Executor backend tests: parity, trace cache, progress hooks."""

import pickle

import pytest

from repro.exec import (
    SKIP_AND_REPORT,
    FailurePolicy,
    ParallelExecutor,
    SerialExecutor,
    TraceCache,
    build_jobs,
    cached_trace,
    execute_job,
    make_executor,
    set_attempt_hook,
)
from repro.obs import MemorySink, PhaseProfiler, Tracer
from repro.obs.events import JOB_DONE
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressLine

JOBS = build_jobs(["gzip", "mcf"],
                  ["decrypt-only", "authen-then-commit"],
                  num_instructions=800, warmup=400)


@pytest.fixture(scope="module")
def serial_results():
    return SerialExecutor().run(JOBS)


class TestSerialParallelParity:
    def test_identical_cycles_and_stats(self, serial_results):
        with ParallelExecutor(2) as executor:
            parallel = executor.run(JOBS)
        assert set(parallel) == set(serial_results)
        for job in JOBS:
            a, b = serial_results[job], parallel[job]
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions
            assert a.stats.as_dict() == b.stats.as_dict()
            assert a.miss_summary == b.miss_summary

    def test_parallel_results_keyed_deterministically(self):
        with ParallelExecutor(2) as executor:
            results = executor.run(JOBS)
        # Result mapping covers exactly the submitted jobs, regardless
        # of which worker finished first.
        assert list(results[job].policy_name for job in JOBS) == \
            [job.policy for job in JOBS]

    def test_pool_reused_across_runs(self):
        executor = ParallelExecutor(2)
        try:
            executor.run(JOBS[:1])
            pool = executor._pool
            executor.run(JOBS[1:2])
            assert executor._pool is pool
        finally:
            executor.close()
        assert executor._pool is None


class TestPickleRoundTrip:
    def test_run_result_and_stats(self, serial_results):
        result = serial_results[JOBS[1]]
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.ipc == result.ipc
        assert clone.stats.as_dict() == result.stats.as_dict()
        assert clone.miss_summary == result.miss_summary
        assert clone.metrics.as_dict() == result.metrics.as_dict()


class TestExecuteJob:
    def test_attaches_metrics(self, serial_results):
        result = serial_results[JOBS[1]]
        assert result.metrics is not None
        assert result.metrics.ipc == result.ipc

    def test_pure_wrt_order(self):
        # Running the same job twice, or after other jobs, is identical.
        job = JOBS[3]
        assert execute_job(job).cycles == execute_job(job).cycles

    def test_profiler_phases(self):
        profiler = PhaseProfiler()
        execute_job(JOBS[0], profiler=profiler, cache=TraceCache())
        for phase in ("tracegen", "warmup", "measure", "metrics"):
            assert profiler.seconds(phase) >= 0.0
        assert profiler.seconds("measure") > 0.0


class TestTraceCache:
    def test_hit_on_second_policy_same_benchmark(self):
        cache = TraceCache()
        SerialExecutor(cache=cache).run(JOBS)
        # 2 benchmarks -> 2 generations; the other policy runs hit.
        assert cache.misses == 2
        assert cache.hits == 2

    def test_identity_hit(self):
        cache = TraceCache()
        a = cached_trace("gzip", 1200, 7, cache=cache)
        b = cached_trace("gzip", 1200, 7, cache=cache)
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_keys_miss(self):
        cache = TraceCache()
        cached_trace("gzip", 1200, 7, cache=cache)
        cached_trace("gzip", 1200, 8, cache=cache)
        cached_trace("gzip", 1300, 7, cache=cache)
        cached_trace("mcf", 1200, 7, cache=cache)
        assert cache.misses == 4 and cache.hits == 0

    def test_lru_eviction(self):
        cache = TraceCache(capacity=2)
        cached_trace("gzip", 100, 1, cache=cache)
        cached_trace("mcf", 100, 1, cache=cache)
        cached_trace("gcc", 100, 1, cache=cache)  # evicts gzip
        assert len(cache) == 2
        cached_trace("gzip", 100, 1, cache=cache)
        assert cache.misses == 4

    def test_tracegen_phase_only_charged_on_miss(self):
        cache = TraceCache()
        profiler = PhaseProfiler()
        cached_trace("gzip", 1200, 7, profiler=profiler, cache=cache)
        generated = profiler.seconds("tracegen")
        cached_trace("gzip", 1200, 7, profiler=profiler, cache=cache)
        assert profiler.seconds("tracegen") == generated

    def test_clear_resets_counters_with_entries(self):
        cache = TraceCache()
        cached_trace("gzip", 1200, 7, cache=cache)
        cached_trace("gzip", 1200, 7, cache=cache)
        cache.clear()
        # A cleared cache must not report phantom hit rates for
        # entries that no longer exist.
        stats = cache.stats()
        assert len(cache) == 0
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 0.0
        assert stats["gen_seconds"] == 0.0
        # And it still works as a fresh cache afterwards.
        cached_trace("gzip", 1200, 7, cache=cache)
        assert cache.stats()["misses"] == 1

    def test_reset_stats_keeps_entries(self):
        cache = TraceCache()
        trace = cached_trace("gzip", 1200, 7, cache=cache)
        cache.reset_stats()
        assert len(cache) == 1
        assert cache.stats()["misses"] == 0
        assert cached_trace("gzip", 1200, 7, cache=cache) is trace
        assert cache.stats()["hits"] == 1


class TestProgressHooks:
    def test_job_done_events_on_tracer(self):
        sink = MemorySink()
        SerialExecutor().run(JOBS, tracer=Tracer([sink]))
        done = [e for e in sink.events if e.kind == JOB_DONE]
        assert len(done) == len(JOBS)
        assert [e.args["completed"] for e in done] == [1, 2, 3, 4]
        assert done[0].args["total"] == len(JOBS)
        assert {e.args["job_id"] for e in done} == \
            {job.job_id for job in JOBS}

    def test_progress_callback(self):
        seen = []
        SerialExecutor().run(
            JOBS[:2],
            progress=lambda job, result, done, total:
                seen.append((job.policy, done, total)))
        assert seen == [("decrypt-only", 1, 2),
                        ("authen-then-commit", 2, 2)]

    def test_parallel_emits_job_done_in_parent(self):
        sink = MemorySink()
        with ParallelExecutor(2) as executor:
            executor.run(JOBS[:2], tracer=Tracer([sink]))
        done = [e for e in sink.events if e.kind == JOB_DONE]
        assert len(done) == 2


class TestMakeExecutor:
    def test_serial_for_one(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_parallel_for_many(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3
        executor.close()

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        executor = make_executor()
        assert isinstance(executor, ParallelExecutor)
        executor.close()
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert isinstance(make_executor(), SerialExecutor)


class Boom(RuntimeError):
    """Deterministic injected failure."""


@pytest.fixture
def fail_hook():
    """Install-and-restore wrapper around set_attempt_hook."""
    installed = []

    def install(fn):
        installed.append(set_attempt_hook(fn))
        return fn

    yield install
    while installed:
        set_attempt_hook(installed.pop())


class _TtyStream:
    def __init__(self):
        import io
        self._buf = io.StringIO()

    def write(self, text):
        self._buf.write(text)

    def flush(self):
        pass

    def isatty(self):
        return True

    def getvalue(self):
        return self._buf.getvalue()


class TestFailureProgress:
    """Failed jobs advance the status line like completions do."""

    def test_skip_run_ends_with_full_cursor_and_failed_segment(
            self, fail_hook):
        jobs = build_jobs(["gzip", "mcf"], ["decrypt-only"],
                          num_instructions=600, warmup=300)
        bad = jobs[0].job_id

        def explode(job, attempt):
            if job.job_id == bad:
                raise Boom("injected")

        fail_hook(explode)
        reg = MetricsRegistry()
        stream = _TtyStream()
        progress = ProgressLine(stream, metrics=reg)
        results = SerialExecutor().run(
            jobs, progress=progress,
            failure_policy=FailurePolicy(mode=SKIP_AND_REPORT),
            metrics=reg)
        progress.close()
        text = stream.getvalue()
        last = text.rstrip("\n").split("\r")[-1]
        # the failed job advanced the same done/total cursor, so the
        # run finishes at [N/N] -- not one short, as before the fix
        assert "[2/2]" in last
        assert "failed 1" in last
        assert "FAILED (Boom" in text
        assert len(results) == 1  # only the surviving job completed

    def test_fail_fast_fires_progress_before_the_raise(self, fail_hook):
        jobs = build_jobs(["gzip"],
                          ["decrypt-only", "authen-then-commit"],
                          num_instructions=600, warmup=300)

        def explode(job, attempt):
            raise Boom("injected")

        fail_hook(explode)
        seen = []
        with pytest.raises(Boom):
            SerialExecutor().run(
                jobs,
                progress=lambda job, result, done, total:
                    seen.append((done, total, result.status)))
        assert seen == [(1, 2, "failed")]

    def test_fail_fast_line_is_terminated_by_the_cli_finally(
            self, fail_hook):
        jobs = build_jobs(["gzip"], ["decrypt-only"],
                          num_instructions=600, warmup=300)

        def explode(job, attempt):
            raise Boom("injected")

        fail_hook(explode)
        stream = _TtyStream()
        progress = ProgressLine(stream)
        try:
            with pytest.raises(Boom):
                SerialExecutor().run(jobs, progress=progress)
        finally:
            progress.close()  # what the CLI's finally block does
        text = stream.getvalue()
        assert "[1/1]" in text
        assert "FAILED (Boom" in text
        assert text.endswith("\n")
