"""GHASH/GMAC tests: NIST GCM vectors and properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.ghash import gf128_mul, ghash, gmac
from repro.crypto.latency import CryptoLatencyModel


class TestGf128:
    def test_zero_annihilates(self):
        assert gf128_mul(0, 12345) == 0
        assert gf128_mul(12345, 0) == 0

    def test_one_is_identity(self):
        # In GCM bit order, the multiplicative identity is 2^127.
        one = 1 << 127
        assert gf128_mul(one, 0xABCDEF) == 0xABCDEF

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 2**128 - 1), b=st.integers(0, 2**128 - 1))
    def test_commutative(self, a, b):
        assert gf128_mul(a, b) == gf128_mul(b, a)

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(0, 2**128 - 1), b=st.integers(0, 2**128 - 1),
           c=st.integers(0, 2**128 - 1))
    def test_distributive_over_xor(self, a, b, c):
        assert gf128_mul(a ^ b, c) == gf128_mul(a, c) ^ gf128_mul(b, c)

    def test_operand_range(self):
        with pytest.raises(ValueError):
            gf128_mul(1 << 128, 1)


class TestGhashVectors:
    def test_nist_gcm_test_case_2(self):
        """GHASH step of NIST GCM spec test case 2 (zero key block)."""
        aes = AES(bytes(16))
        h = aes.encrypt_block(bytes(16))
        cipher_block = bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        length_block = (128).to_bytes(16, "big")
        digest = ghash(h, cipher_block + length_block)
        # GCM tag for test case 2 = E(K, Y0) XOR this digest; with the
        # known tag ab6e47d42cec13bdf53a67b21257bddf and
        # E(K,Y0)=58e2fccefa7e3061367f1d57a4e7455a:
        expected = bytes(
            a ^ b for a, b in zip(
                bytes.fromhex("ab6e47d42cec13bdf53a67b21257bddf"),
                bytes.fromhex("58e2fccefa7e3061367f1d57a4e7455a"),
            )
        )
        assert digest == expected

    def test_padding(self):
        h = AES(bytes(16)).encrypt_block(bytes(16))
        assert ghash(h, b"\x01") == ghash(h, b"\x01" + bytes(15))


class TestGmac:
    def test_deterministic(self):
        aes = AES(b"k" * 16)
        assert gmac(aes, 7, b"line") == gmac(aes, 7, b"line")

    def test_nonce_separates(self):
        aes = AES(b"k" * 16)
        assert gmac(aes, 7, b"line") != gmac(aes, 8, b"line")

    def test_detects_modification(self):
        aes = AES(b"k" * 16)
        assert gmac(aes, 7, b"line") != gmac(aes, 7, b"lin3")

    def test_length_binding(self):
        aes = AES(b"k" * 16)
        assert gmac(aes, 7, b"ab") != gmac(aes, 7, b"ab\x00")

    def test_truncation(self):
        aes = AES(b"k" * 16)
        assert len(gmac(aes, 1, b"x", mac_bits=32)) == 4
        with pytest.raises(ValueError):
            gmac(aes, 1, b"x", mac_bits=7)


class TestGmacLatencyScheme:
    def test_counter_gmac_row(self):
        model = CryptoLatencyModel()
        row = model.gap_for("counter+gmac", 200)
        assert row.gap < model.gap_for("counter+hmac", 200).gap
        assert row.authentication_latency == 200 + model.gmac_line_latency()

    def test_gmac_nearly_closes_gap(self):
        model = CryptoLatencyModel()
        assert model.gap_for("counter+gmac", 200).gap <= 10
