"""AES known-answer tests (FIPS-197 appendix vectors) and properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES


class TestFipsVectors:
    def test_aes128_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plain) == expected

    def test_aes128_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plain) == expected

    def test_aes192_fips197_appendix_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plain) == expected

    def test_aes256_fips197_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plain) == expected

    def test_aes256_decrypt_inverts_appendix_c3(self):
        key = bytes(range(32))
        cipher = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).decrypt_block(cipher) == bytes.fromhex(
            "00112233445566778899aabbccddeeff"
        )


class TestInterface:
    @pytest.mark.parametrize("keylen,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_count_matches_key_length(self, keylen, rounds):
        assert AES(bytes(keylen)).rounds == rounds

    @pytest.mark.parametrize("keylen", [0, 8, 15, 17, 31, 33, 64])
    def test_bad_key_length_rejected(self, keylen):
        with pytest.raises(ValueError):
            AES(bytes(keylen))

    @pytest.mark.parametrize("blocklen", [0, 8, 15, 17, 32])
    def test_bad_block_length_rejected(self, blocklen):
        aes = AES(bytes(16))
        with pytest.raises(ValueError):
            aes.encrypt_block(bytes(blocklen))
        with pytest.raises(ValueError):
            aes.decrypt_block(bytes(blocklen))


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=16, max_size=16),
    )
    def test_decrypt_inverts_encrypt(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @settings(max_examples=15, deadline=None)
    @given(
        key=st.binary(min_size=32, max_size=32),
        block=st.binary(min_size=16, max_size=16),
    )
    def test_decrypt_inverts_encrypt_256(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @settings(max_examples=15, deadline=None)
    @given(block=st.binary(min_size=16, max_size=16))
    def test_encryption_changes_block(self, block):
        # AES is a permutation without fixed points being *guaranteed*, but
        # hitting one by chance is ~2^-128; treat equality as failure.
        assert AES(bytes(range(16))).encrypt_block(block) != block
