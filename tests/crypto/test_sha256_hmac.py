"""SHA-256 / HMAC known-answer tests, cross-checked against hashlib."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import hmac_sha256, truncated_mac
from repro.crypto.sha256 import Sha256, padded_block_count, sha256

import pytest


class TestSha256Vectors:
    def test_empty(self):
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert (
            sha256(msg).hex()
            == "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_incremental_equals_oneshot(self):
        h = Sha256()
        h.update(b"hello ")
        h.update(b"world")
        assert h.digest() == sha256(b"hello world")

    def test_copy_is_independent(self):
        h = Sha256(b"prefix")
        clone = h.copy()
        h.update(b"more")
        assert clone.digest() == sha256(b"prefix")
        assert h.digest() == sha256(b"prefixmore")


class TestSha256Properties:
    @settings(max_examples=60, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=200), split=st.integers(0, 200))
    def test_streaming_split_invariance(self, data, split):
        split = min(split, len(data))
        h = Sha256().update(data[:split]).update(data[split:])
        assert h.digest() == sha256(data)

    @settings(max_examples=40, deadline=None)
    @given(length=st.integers(0, 1024))
    def test_padded_block_count(self, length):
        # The total padded length must be the next multiple of 64 that
        # leaves room for the 9 mandatory trailer bytes.
        blocks = padded_block_count(length)
        assert blocks * 64 >= length + 9
        assert (blocks - 1) * 64 < length + 9


class TestHmac:
    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        tag = hmac_sha256(key, b"Hi There")
        assert tag.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case_2(self):
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_long_key_is_hashed(self):
        key = b"k" * 200
        assert hmac_sha256(key, b"m") == stdlib_hmac.new(
            key, b"m", hashlib.sha256
        ).digest()

    @settings(max_examples=40, deadline=None)
    @given(key=st.binary(min_size=1, max_size=100), msg=st.binary(max_size=200))
    def test_matches_stdlib(self, key, msg):
        assert hmac_sha256(key, msg) == stdlib_hmac.new(
            key, msg, hashlib.sha256
        ).digest()

    def test_truncated_mac_is_prefix(self):
        key, msg = b"key", b"line"
        assert truncated_mac(key, msg, 64) == hmac_sha256(key, msg)[:8]

    @pytest.mark.parametrize("bits", [0, 4, 7, 257, 264])
    def test_truncated_mac_rejects_bad_width(self, bits):
        with pytest.raises(ValueError):
            truncated_mac(b"k", b"m", bits)
