"""Mode-of-operation tests: NIST vectors, roundtrips, malleability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.cbc_mac import cbc_mac
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_PLAIN = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
)


@pytest.fixture
def aes():
    return AES(KEY)


class TestEcb:
    def test_nist_sp800_38a_vector(self, aes):
        expected = bytes.fromhex(
            "3ad77bb40d7a3660a89ecaf32466ef97"
            "f5d3d58503b9699de785895a96fdbaaf"
        )
        assert ecb_encrypt(aes, NIST_PLAIN) == expected
        assert ecb_decrypt(aes, expected) == NIST_PLAIN

    def test_rejects_partial_block(self, aes):
        with pytest.raises(ValueError):
            ecb_encrypt(aes, b"short")


class TestCbc:
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")

    def test_nist_sp800_38a_vector(self, aes):
        expected = bytes.fromhex(
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
        )
        assert cbc_encrypt(aes, NIST_PLAIN, self.IV) == expected
        assert cbc_decrypt(aes, expected, self.IV) == NIST_PLAIN

    def test_rejects_bad_iv(self, aes):
        with pytest.raises(ValueError):
            cbc_encrypt(aes, NIST_PLAIN, b"shortiv")

    @settings(max_examples=20, deadline=None)
    @given(blocks=st.integers(1, 4), data=st.data())
    def test_roundtrip(self, blocks, data):
        aes = AES(KEY)
        plain = data.draw(st.binary(min_size=16 * blocks, max_size=16 * blocks))
        iv = data.draw(st.binary(min_size=16, max_size=16))
        assert cbc_decrypt(aes, cbc_encrypt(aes, plain, iv), iv) == plain


class TestCtr:
    def test_is_self_inverse(self, aes):
        cipher = ctr_transform(aes, 99, NIST_PLAIN)
        assert ctr_transform(aes, 99, cipher) == NIST_PLAIN

    def test_keystream_is_deterministic(self, aes):
        assert ctr_keystream(aes, 5, 48) == ctr_keystream(aes, 5, 48)

    def test_keystream_prefix_property(self, aes):
        assert ctr_keystream(aes, 5, 64)[:20] == ctr_keystream(aes, 5, 20)

    def test_distinct_nonces_distinct_streams(self, aes):
        assert ctr_keystream(aes, 1, 32) != ctr_keystream(aes, 2, 32)

    def test_counter_wraps_at_block_width(self, aes):
        limit = 1 << 128
        assert ctr_keystream(aes, limit - 1, 32) == (
            ctr_keystream(aes, limit - 1, 16) + ctr_keystream(aes, 0, 16)
        )

    def test_malleability_bit_flip(self, aes):
        """The attack-enabling property: ciphertext bit k flips plaintext bit k."""
        cipher = ctr_transform(aes, 7, NIST_PLAIN)
        tampered = bytearray(cipher)
        tampered[3] ^= 0x10
        plain = ctr_transform(aes, 7, bytes(tampered))
        expected = bytearray(NIST_PLAIN)
        expected[3] ^= 0x10
        assert plain == bytes(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        nonce=st.integers(0, 2**128 - 1),
        data=st.binary(max_size=100),
    )
    def test_roundtrip_any_length(self, nonce, data):
        aes = AES(KEY)
        assert ctr_transform(aes, nonce, ctr_transform(aes, nonce, data)) == data


class TestCbcMac:
    def test_deterministic(self, aes):
        assert cbc_mac(aes, b"line data") == cbc_mac(aes, b"line data")

    def test_detects_modification(self, aes):
        assert cbc_mac(aes, b"line data") != cbc_mac(aes, b"line Data")

    def test_length_binding(self, aes):
        # Same padded content, different declared lengths -> different MACs.
        assert cbc_mac(aes, b"ab") != cbc_mac(aes, b"ab\x00")

    def test_truncation_width(self, aes):
        assert len(cbc_mac(aes, b"x" * 64, mac_bits=32)) == 4

    def test_rejects_bad_width(self, aes):
        with pytest.raises(ValueError):
            cbc_mac(aes, b"x", mac_bits=3)
