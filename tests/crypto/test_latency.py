"""Tests of the Table 1 latency-gap model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.latency import CryptoLatencyModel, latency_gap_table


class TestModelConstruction:
    def test_defaults_match_paper_reference(self):
        model = CryptoLatencyModel()
        assert model.decrypt_latency == 80
        assert model.hmac_latency == 74
        assert model.chunks_per_line == 4  # 64B line / 16B chunks

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            CryptoLatencyModel(decrypt_latency=0)
        with pytest.raises(ValueError):
            CryptoLatencyModel(hmac_latency=-1)

    def test_rejects_partial_block_line(self):
        with pytest.raises(ValueError):
            CryptoLatencyModel(line_bytes=60)


class TestCounterModeLatency:
    def test_pad_hides_behind_long_fetch(self):
        model = CryptoLatencyModel(decrypt_latency=80)
        # Memory arrives at cycle 200 > 0+80, so plaintext at arrival.
        assert model.counter_mode_data_ready(0, 200) == 200

    def test_pad_exposed_on_fast_fetch(self):
        model = CryptoLatencyModel(decrypt_latency=80)
        assert model.counter_mode_data_ready(0, 40) == 80

    def test_counter_cache_miss_delays_pad(self):
        model = CryptoLatencyModel(decrypt_latency=80)
        # Pad generation could not start until cycle 150.
        assert model.counter_mode_data_ready(0, 200, pad_start=150) == 230

    def test_auth_always_after_arrival(self):
        model = CryptoLatencyModel()
        assert model.counter_mode_auth_done(200) == 200 + model.hmac_line_latency()


class TestCbcLatency:
    def test_chunk_latency_is_serial(self):
        model = CryptoLatencyModel(decrypt_latency=80)
        assert model.cbc_chunk_ready(100, 0) == 180
        assert model.cbc_chunk_ready(100, 3) == 100 + 80 * 4

    def test_chunk_index_bounds(self):
        model = CryptoLatencyModel()
        with pytest.raises(ValueError):
            model.cbc_chunk_ready(0, 4)
        with pytest.raises(ValueError):
            model.cbc_chunk_ready(0, -1)

    def test_cbcmac_equals_last_chunk(self):
        model = CryptoLatencyModel()
        n = model.chunks_per_line
        assert model.cbc_mac_auth_done(50) == model.cbc_chunk_ready(50, n - 1)


class TestTable1:
    def test_table_has_both_schemes(self):
        rows = latency_gap_table(CryptoLatencyModel(), 200)
        assert [r.scheme for r in rows] == ["counter+hmac", "cbc+cbcmac"]

    def test_counter_mode_gap_is_positive(self):
        """The paper's premise: auth lags full decryption under CTR+HMAC."""
        row = CryptoLatencyModel().gap_for("counter+hmac", 200)
        assert row.gap > 0

    def test_cbc_gap_is_zero(self):
        """CBC+CBC-MAC closes the gap (but with terrible decrypt latency)."""
        row = CryptoLatencyModel().gap_for("cbc+cbcmac", 200)
        assert row.gap == 0

    def test_counter_critical_word_beats_cbc(self):
        model = CryptoLatencyModel()
        ctr = model.gap_for("counter+hmac", 200)
        cbc = model.gap_for("cbc+cbcmac", 200)
        assert ctr.decryption_latency < cbc.decryption_latency

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            CryptoLatencyModel().gap_for("ecb+magic", 100)

    @settings(max_examples=30, deadline=None)
    @given(mem=st.integers(1, 2000))
    def test_auth_latency_tracks_memory_latency(self, mem):
        model = CryptoLatencyModel()
        row = model.gap_for("counter+hmac", mem)
        assert row.authentication_latency == mem + model.hmac_line_latency()
        # Once the fetch dominates the pad (realistic memory latencies),
        # authentication always lags decryption -- the paper's premise.
        if mem >= model.decrypt_latency:
            assert row.gap == model.hmac_line_latency()
