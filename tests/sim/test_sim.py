"""Simulation driver tests: runner, sweep, report, config."""

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.sim.report import render_table, series_rows
from repro.sim.runner import build_simulator, run_benchmark
from repro.sim.sweep import PolicySweep, normalized_ipc_table, speedup_over


class TestConfig:
    def test_defaults_match_table3(self):
        config = SimConfig()
        assert config.core.fetch_width == 8
        assert config.core.ruu_entries == 128
        assert config.l1i.size_bytes == 16 * 1024
        assert config.l2.size_bytes == 256 * 1024
        assert config.l2.latency == 4
        assert config.secure.decrypt_latency == 80
        assert config.secure.hmac_latency == 74

    def test_with_l2_size_adjusts_latency(self):
        big = SimConfig().with_l2_size(1024 * 1024)
        assert big.l2.size_bytes == 1024 * 1024
        assert big.l2.latency == 8

    def test_with_ruu(self):
        assert SimConfig().with_ruu(64).core.ruu_entries == 64

    def test_with_secure(self):
        config = SimConfig().with_secure(hash_tree_enabled=True)
        assert config.secure.hash_tree_enabled
        assert not SimConfig().secure.hash_tree_enabled  # original intact

    def test_dram_cycle_conversions(self):
        dram = SimConfig().dram
        assert dram.cas_cycles == 100
        assert dram.rcd_cycles == 35
        assert dram.transfer_cycles(64) == 40

    def test_validation(self):
        from repro.config import CoreConfig

        with pytest.raises(ConfigError):
            CoreConfig(ruu_entries=4)
        with pytest.raises(ConfigError):
            CoreConfig(branch_predictor_accuracy=1.5)


class TestRunner:
    def test_run_benchmark(self):
        result = run_benchmark("gzip", 2000)
        assert result.instructions == 2000
        assert 0 < result.ipc < 8

    def test_policy_object_accepted(self):
        from repro.policies.registry import make_policy

        core, _ = build_simulator(SimConfig(),
                                  make_policy("authen-then-commit"))
        assert core.policy.name == "authen-then-commit"

    def test_runs_are_isolated(self):
        a = run_benchmark("gzip", 2000)
        b = run_benchmark("gzip", 2000)
        assert a.ipc == b.ipc  # fresh state both times


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return PolicySweep(
            ["gzip", "twolf"],
            ["authen-then-issue", "authen-then-write"],
            num_instructions=3000,
            warmup=2000,
        ).run()

    def test_results_populated(self, sweep):
        assert ("gzip", "authen-then-issue") in sweep.results
        assert ("twolf", "decrypt-only") in sweep.results  # baseline added

    def test_normalized_le_one(self, sweep):
        for benchmark in sweep.benchmarks:
            for policy in sweep.policies:
                assert 0 < sweep.normalized(benchmark, policy) <= 1.001

    def test_write_beats_issue(self, sweep):
        assert (sweep.average_normalized("authen-then-write")
                > sweep.average_normalized("authen-then-issue"))

    def test_table_has_average_row(self, sweep):
        rows = normalized_ipc_table(sweep)
        assert rows[-1][0] == "average"
        assert len(rows) == 3

    def test_speedup_over_reference(self, sweep):
        rows = speedup_over(sweep, "authen-then-issue",
                            ["authen-then-write"])
        for _, values in rows:
            assert values["authen-then-write"] >= 0.99

    def test_shared_trace_across_policies(self, sweep):
        a = sweep.results[("gzip", "authen-then-issue")]
        b = sweep.results[("gzip", "authen-then-write")]
        assert a.instructions == b.instructions


class TestReport:
    def test_render_alignment(self):
        text = render_table(["name", "value"],
                            [["a", 1.0], ["longer", 0.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456]], float_format="%.2f")
        assert "0.12" in text

    def test_numeric_columns_right_aligned(self):
        text = render_table(["benchmark", "cycles"],
                            [["gzip", 12], ["a", 1234567]])
        rows = text.splitlines()[2:]
        assert rows[0] == "gzip            12"
        assert rows[1] == "a          1234567"

    def test_text_columns_stay_left_aligned(self):
        text = render_table(["name", "tag"], [["a", "x"], ["bb", "yy"]])
        assert text.splitlines()[2] == "a     x  "

    def test_series_rows(self):
        rows = series_rows([("b1", {"p": 0.5})], ["p"])
        assert rows == [["b1", 0.5]]
