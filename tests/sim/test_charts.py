"""ASCII chart renderer tests."""

from repro.sim.charts import render_bars, render_grouped_bars


class TestRenderBars:
    def test_empty(self):
        assert render_bars({}) == ""

    def test_full_bar_for_peak(self):
        text = render_bars({"x": 2.0, "y": 1.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_values_rendered(self):
        text = render_bars({"a": 0.876}, value_format="%.3f")
        assert "0.876" in text

    def test_labels_aligned(self):
        text = render_bars({"a": 1.0, "longer": 1.0})
        first, second = text.splitlines()
        assert first.index("█") == second.index("█")

    def test_max_value_clamps(self):
        text = render_bars({"a": 5.0}, width=10, max_value=1.0)
        assert text.count("█") == 10

    def test_zero_values(self):
        text = render_bars({"a": 0.0, "b": 0.0})
        assert "█" not in text


class TestGroupedBars:
    def test_layout(self):
        rows = [("bench1", {"p1": 0.9, "p2": 0.5})]
        text = render_grouped_bars(rows, ["p1", "p2"])
        assert text.startswith("bench1")
        assert "p1" in text and "p2" in text

    def test_multiple_groups(self):
        rows = [("b1", {"p": 0.9}), ("b2", {"p": 0.8})]
        text = render_grouped_bars(rows, ["p"])
        assert "b1" in text and "b2" in text
