"""Graceful degradation of tables/averages/CSV on terminally-failed jobs.

Regression suite for the headline bugfix: every table builder used to
raise KeyError the moment a sweep came back partial under a skipping
failure policy.  Now a failed cell is None (rendered ``--``), averages
cover only what completed, and the failure count lands in the footer,
the CSV and the manifest.
"""

import csv

import pytest

from repro.exec import SKIP_AND_REPORT, FailurePolicy, set_attempt_hook
from repro.obs.export import build_sweep_manifest, write_sweep_csv
from repro.sim.report import (
    MISSING_CELL,
    failure_footer,
    render_table,
    series_rows,
)
from repro.sim.sweep import (
    BASELINE,
    PolicySweep,
    normalized_ipc_table,
    speedup_over,
)

SCALE = dict(num_instructions=600, warmup=300)


@pytest.fixture
def hook():
    installed = []

    def install(fn):
        installed.append(set_attempt_hook(fn))
        return fn

    yield install
    while installed:
        set_attempt_hook(installed.pop())


def partial_sweep(hook, benchmarks=("gzip", "mcf"),
                  policies=("authen-then-commit", "authen-then-write"),
                  fail=("mcf", "authen-then-commit")):
    """A sweep with exactly one (benchmark, policy) job failed."""

    def fail_one(job, attempt):
        if (job.benchmark, job.policy) == fail:
            raise RuntimeError("injected terminal failure")

    hook(fail_one)
    return PolicySweep(list(benchmarks), list(policies), **SCALE).run(
        failure_policy=FailurePolicy(mode=SKIP_AND_REPORT))


class TestPartialSweepAccessors:
    def test_failed_cell_is_none_not_keyerror(self, hook):
        sweep = partial_sweep(hook)
        assert sweep.ipc_or_none("mcf", "authen-then-commit") is None
        assert sweep.ipc_or_none("gzip", "authen-then-commit") > 0
        assert sweep.normalized("mcf", "authen-then-commit") is None
        with pytest.raises(KeyError):  # the strict accessor still raises
            sweep.ipc("mcf", "authen-then-commit")

    def test_failed_jobs_names_the_casualty(self, hook):
        sweep = partial_sweep(hook)
        assert set(sweep.failed_jobs()) == {("mcf", "authen-then-commit")}

    def test_average_excludes_failed_benchmark(self, hook):
        sweep = partial_sweep(hook)
        avg = sweep.average_normalized("authen-then-commit")
        assert avg == sweep.normalized("gzip", "authen-then-commit")

    def test_average_none_when_nothing_completed(self, hook):
        def fail_policy(job, attempt):
            if job.policy == "authen-then-commit":
                raise RuntimeError("injected terminal failure")

        hook(fail_policy)
        sweep = PolicySweep(["gzip"], ["authen-then-commit"],
                            **SCALE).run(
            failure_policy=FailurePolicy(mode=SKIP_AND_REPORT))
        assert sweep.average_normalized("authen-then-commit") is None


class TestPartialTables:
    def test_normalized_table_has_none_cells(self, hook):
        sweep = partial_sweep(hook)
        rows = normalized_ipc_table(sweep,
                                    ["authen-then-commit",
                                     "authen-then-write"])
        cells = dict(rows)
        assert cells["mcf"]["authen-then-commit"] is None
        assert cells["mcf"]["authen-then-write"] is not None
        assert cells["average"]["authen-then-commit"] is not None

    def test_speedup_over_skips_failed_reference(self, hook):
        sweep = partial_sweep(hook,
                              fail=("mcf", "authen-then-write"))
        rows = speedup_over(sweep, "authen-then-write",
                            ["authen-then-commit"])
        cells = dict(rows)
        # mcf's reference run failed: its speedup cell is None and the
        # average covers gzip only.
        assert cells["mcf"]["authen-then-commit"] is None
        assert cells["average"]["authen-then-commit"] == \
            cells["gzip"]["authen-then-commit"]

    def test_render_table_shows_placeholder(self, hook):
        sweep = partial_sweep(hook)
        policies = ["authen-then-commit", "authen-then-write"]
        rows = normalized_ipc_table(sweep, policies)
        text = render_table(["benchmark"] + policies,
                            series_rows(rows, policies))
        assert MISSING_CELL in text
        assert "KeyError" not in text

    def test_failure_footer_counts_and_names(self, hook):
        sweep = partial_sweep(hook)
        footer = failure_footer(sweep)
        assert "1 job(s) failed terminally" in footer
        assert "mcf/authen-then-commit" in footer
        assert MISSING_CELL in footer

    def test_failure_footer_empty_on_clean_sweep(self):
        sweep = PolicySweep(["gzip"], ["authen-then-commit"],
                            **SCALE).run()
        assert failure_footer(sweep) == ""


class TestPartialExports:
    def test_csv_carries_failed_row(self, hook, tmp_path):
        sweep = partial_sweep(hook)
        path = tmp_path / "sweep.csv"
        write_sweep_csv(sweep, str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        by_key = {(r["benchmark"], r["policy"]): r for r in rows}
        failed = by_key[("mcf", "authen-then-commit")]
        assert failed["status"] == "failed"
        assert failed["ipc"] == ""
        assert by_key[("gzip", "authen-then-commit")]["status"] == "ok"

    def test_manifest_counts_failures(self, hook):
        sweep = partial_sweep(hook)
        manifest = build_sweep_manifest(sweep)
        assert len(manifest["failures"]) == 1
        assert manifest["failures"][0]["status"] == "failed"
        run_keys = {(r["benchmark"], r["policy"])
                    for r in manifest["runs"]}
        assert ("mcf", "authen-then-commit") not in run_keys


class TestDuplicateBenchmarks:
    def test_duplicates_deduped_and_average_undeflated(self):
        dup = PolicySweep(["gzip", "gzip"], ["authen-then-commit"],
                          **SCALE).run()
        ref = PolicySweep(["gzip"], ["authen-then-commit"],
                          **SCALE).run()
        assert dup.benchmarks == ["gzip"]
        assert dup.average_normalized("authen-then-commit") == \
            ref.average_normalized("authen-then-commit")
