"""Sweep checkpoint (JSON persistence) tests."""

import pytest

from repro.sim.checkpoint import load_sweep, save_sweep, sweep_to_dict
from repro.sim.sweep import PolicySweep


@pytest.fixture(scope="module")
def sweep():
    return PolicySweep(["gzip"], ["authen-then-write"],
                       num_instructions=2000, warmup=1000).run()


class TestCheckpoint:
    def test_dict_shape(self, sweep):
        payload = sweep_to_dict(sweep)
        assert payload["benchmarks"] == ["gzip"]
        assert len(payload["runs"]) == 2  # policy + baseline
        run = payload["runs"][0]
        assert {"benchmark", "policy", "ipc", "cycles",
                "instructions", "miss_rates"} <= set(run)

    def test_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        view = load_sweep(path)
        assert view.ipc("gzip", "authen-then-write") == pytest.approx(
            sweep.ipc("gzip", "authen-then-write"))
        assert view.normalized("gzip", "authen-then-write") == \
            pytest.approx(sweep.normalized("gzip", "authen-then-write"))

    def test_average_normalized_matches(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        view = load_sweep(path)
        assert view.average_normalized("authen-then-write") == \
            pytest.approx(sweep.average_normalized("authen-then-write"))

    def test_json_is_valid(self, sweep, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        with open(path) as handle:
            json.load(handle)
