"""Sweep checkpoint (JSON persistence) tests."""

import json

import pytest

from repro.errors import CheckpointError
from repro.sim.checkpoint import (
    FORMAT_VERSION,
    load_sweep,
    save_sweep,
    sweep_to_dict,
)
from repro.sim.sweep import PolicySweep


@pytest.fixture(scope="module")
def sweep():
    return PolicySweep(["gzip"], ["authen-then-write"],
                       num_instructions=2000, warmup=1000).run()


class TestCheckpoint:
    def test_dict_shape(self, sweep):
        payload = sweep_to_dict(sweep)
        assert payload["benchmarks"] == ["gzip"]
        assert payload["format_version"] == FORMAT_VERSION
        assert len(payload["runs"]) == 2  # policy + baseline
        run = payload["runs"][0]
        assert {"benchmark", "policy", "ipc", "cycles",
                "instructions", "miss_rates", "stats"} <= set(run)

    def test_stats_snapshot_persisted(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        view = load_sweep(path)
        stats = view.stats("gzip", "authen-then-write")
        assert stats["auth_requests"] > 0
        assert "decrypt_verify_gap" in stats

    def test_version_mismatch_raises_checkpoint_error(self, sweep,
                                                      tmp_path):
        payload = sweep_to_dict(sweep)
        payload["format_version"] = FORMAT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format_version"):
            load_sweep(path)

    def test_unversioned_seed_file_raises(self, sweep, tmp_path):
        payload = sweep_to_dict(sweep)
        del payload["format_version"]
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            load_sweep(path)

    def test_missing_key_raises_checkpoint_error(self, sweep, tmp_path):
        payload = sweep_to_dict(sweep)
        del payload["runs"]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="missing key"):
            load_sweep(path)

    def test_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        view = load_sweep(path)
        assert view.ipc("gzip", "authen-then-write") == pytest.approx(
            sweep.ipc("gzip", "authen-then-write"))
        assert view.normalized("gzip", "authen-then-write") == \
            pytest.approx(sweep.normalized("gzip", "authen-then-write"))

    def test_average_normalized_matches(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        view = load_sweep(path)
        assert view.average_normalized("authen-then-write") == \
            pytest.approx(sweep.average_normalized("authen-then-write"))

    def test_json_is_valid(self, sweep, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        with open(path) as handle:
            json.load(handle)


class TestAtomicWrite:
    def test_replaces_content_and_leaves_no_tmp(self, tmp_path):
        from repro.sim.checkpoint import atomic_write_text

        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        import os as _os

        from repro.sim import checkpoint

        path = tmp_path / "out.json"
        checkpoint.atomic_write_text(path, "precious")

        def refuse(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(checkpoint.os, "replace", refuse)
        with pytest.raises(OSError):
            checkpoint.atomic_write_text(path, "torn")
        assert path.read_text() == "precious"

    def test_save_sweep_is_atomic(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        save_sweep(sweep, path)  # overwrite goes through replace too
        assert json.loads(path.read_text())["format_version"] == \
            FORMAT_VERSION
        assert not (tmp_path / "sweep.json.tmp").exists()
