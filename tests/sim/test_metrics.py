"""Derived-metrics tests."""

import pytest

from repro import SimConfig, generate_trace, get_profile
from repro.sim.metrics import render_metrics, run_with_metrics


@pytest.fixture(scope="module")
def run():
    trace = generate_trace(get_profile("twolf"), 5000)
    return run_with_metrics(trace, SimConfig(), "authen-then-commit")


class TestMetrics:
    def test_basic_fields(self, run):
        result, metrics = run
        assert metrics.ipc == result.ipc
        assert metrics.cycles == result.cycles
        assert metrics.instructions == 5000

    def test_traffic_decomposition(self, run):
        _, metrics = run
        assert metrics.dram_reads > 0
        assert metrics.reads_per_kinst == pytest.approx(
            1000 * metrics.dram_reads / 5000)

    def test_rates_in_range(self, run):
        _, metrics = run
        assert 0 <= metrics.row_hit_rate <= 1
        assert 0 <= metrics.bus_utilisation <= 1
        assert metrics.mean_read_latency > 100  # DRAM-class

    def test_auth_pressure_visible(self, run):
        _, metrics = run
        assert metrics.auth_requests > 0
        assert metrics.mean_verify_gap > 0

    def test_baseline_has_no_auth_activity(self):
        trace = generate_trace(get_profile("twolf"), 3000)
        _, metrics = run_with_metrics(trace, SimConfig(), "decrypt-only")
        assert metrics.auth_requests == 0
        assert metrics.mean_verify_gap == 0.0

    def test_as_dict_roundtrip(self, run):
        _, metrics = run
        d = metrics.as_dict()
        assert d["ipc"] == metrics.ipc
        assert isinstance(d["miss_rates"], dict)

    def test_render(self, run):
        _, metrics = run
        text = render_metrics(metrics)
        assert "dram:" in text and "auth:" in text
