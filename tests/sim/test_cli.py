"""CLI tests (direct main() invocation, no subprocess)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "authen-then-commit" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "counter+hmac" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "RUU" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--compute-latency", "15"]) == 0
        assert "cycles earlier" in capsys.readouterr().out

    def test_run_single_policy(self, capsys):
        code = main(["run", "gzip", "-n", "1500",
                     "-p", "decrypt-only", "-p", "authen-then-write"])
        assert code == 0
        out = capsys.readouterr().out
        assert "authen-then-write" in out

    def test_attack_blocked_exit_zero(self, capsys):
        code = main(["attack", "pointer-conversion",
                     "-p", "commit+fetch", "--fail-on-leak"])
        assert code == 0
        assert "blocked" in capsys.readouterr().out

    def test_attack_leak_exit_one(self, capsys):
        code = main(["attack", "pointer-conversion",
                     "-p", "authen-then-write", "--fail-on-leak"])
        assert code == 1
        assert "LEAKED" in capsys.readouterr().out

    def test_attack_all(self, capsys):
        assert main(["attack", "all", "-p", "commit+fetch"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 7

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_benchmark_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "doom3"])

    def test_table2_static(self, capsys):
        assert main(["table2", "--static"]) == 0
        assert "authen-then-issue" in capsys.readouterr().out
