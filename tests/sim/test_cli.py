"""CLI tests (direct main() invocation, no subprocess)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "authen-then-commit" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "counter+hmac" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "RUU" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--compute-latency", "15"]) == 0
        assert "cycles earlier" in capsys.readouterr().out

    def test_run_single_policy(self, capsys):
        code = main(["run", "gzip", "-n", "1500",
                     "-p", "decrypt-only", "-p", "authen-then-write"])
        assert code == 0
        out = capsys.readouterr().out
        assert "authen-then-write" in out

    def test_run_trace_out_and_emit_json(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "t.json"
        manifest_path = tmp_path / "r.json"
        code = main(["run", "gzip", "-n", "1200",
                     "-p", "authen-then-commit",
                     "--trace-out", str(trace_path),
                     "--emit-json", str(manifest_path)])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "run"
        assert manifest["config"]["seed"] == 2006
        assert manifest["phases"]["measure"] > 0
        assert manifest["stats"]["auth_requests"] > 0
        assert "phase timings" in capsys.readouterr().out

    def test_run_multi_policy_manifest(self, capsys, tmp_path):
        import json

        manifest_path = tmp_path / "set.json"
        code = main(["run", "gzip", "-n", "1200",
                     "-p", "decrypt-only", "-p", "authen-then-commit",
                     "--emit-json", str(manifest_path)])
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "run-set"
        assert [run["policy"] for run in manifest["runs"]] == \
            ["decrypt-only", "authen-then-commit"]

    def test_trace_command_renders_timeline(self, capsys):
        code = main(["trace", "gzip", "-n", "1200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decrypt-to-verify windows" in out
        assert "VERIFY_DONE" in out

    def test_trace_command_decrypt_only_has_no_windows(self, capsys):
        code = main(["trace", "gzip", "-n", "800", "-p", "decrypt-only"])
        assert code == 0
        assert "no decrypt-to-verify windows" in capsys.readouterr().out

    def test_attack_blocked_exit_zero(self, capsys):
        code = main(["attack", "pointer-conversion",
                     "-p", "commit+fetch", "--fail-on-leak"])
        assert code == 0
        assert "blocked" in capsys.readouterr().out

    def test_attack_leak_exit_one(self, capsys):
        code = main(["attack", "pointer-conversion",
                     "-p", "authen-then-write", "--fail-on-leak"])
        assert code == 1
        assert "LEAKED" in capsys.readouterr().out

    def test_attack_all(self, capsys):
        assert main(["attack", "all", "-p", "commit+fetch"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 7

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_benchmark_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "doom3"])

    def test_table2_static(self, capsys):
        assert main(["table2", "--static"]) == 0
        assert "authen-then-issue" in capsys.readouterr().out


class TestStoreCli:
    def test_sweep_store_warm_table_identical(self, capsys, tmp_path):
        import os

        from repro.exec.store import STORE_ENV, set_active_store

        argv = ["sweep", "gzip", "-p", "decrypt-only",
                "-p", "authen-then-commit", "-n", "1000",
                "--warmup", "500", "--store", str(tmp_path / "store")]

        def table(out):
            return [line for line in out.splitlines()
                    if line.startswith(("gzip", "average"))]

        try:
            assert main(argv) == 0
            cold = table(capsys.readouterr().out)
            assert main(argv) == 0
            warm = table(capsys.readouterr().out)
        finally:
            set_active_store(None)
            os.environ.pop(STORE_ENV, None)
        assert cold and cold == warm
        store_root = tmp_path / "store"
        assert (store_root / "results").is_dir()
        assert any((store_root / "results").iterdir())

    def test_store_subcommand_stats_verify_gc(self, capsys, tmp_path):
        import json as jsonlib

        from repro.exec import ArtifactStore
        from repro.workloads.spec import get_profile
        from repro.workloads.tracegen import generate_trace

        store_dir = str(tmp_path / "store")
        store = ArtifactStore(store_dir)
        trace = generate_trace(get_profile("gzip"), 800, seed=1)
        store.save_trace(trace, "gzip", 800, 1)

        assert main(["store", "stats", "--dir", store_dir,
                     "--json"]) == 0
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["tiers"]["traces"]["entries"] == 1

        assert main(["store", "verify", "--dir", store_dir]) == 0
        assert "1 ok" in capsys.readouterr().out

        # gc pins recently-touched entries (concurrent readers may
        # hold them); age the entry past the horizon so it can go
        import os
        import time
        old = time.time() - store.stale_lock_seconds - 1
        for root, _, files in os.walk(store_dir):
            for name in files:
                os.utime(os.path.join(root, name), (old, old))
        assert main(["store", "gc", "--dir", store_dir,
                     "--max-bytes", "0"]) == 0
        assert "evicted 1 entry" in capsys.readouterr().out

    def test_store_verify_flags_corruption(self, capsys, tmp_path):
        from repro.exec import ArtifactStore
        from repro.workloads.spec import get_profile
        from repro.workloads.tracegen import generate_trace

        store_dir = str(tmp_path / "store")
        store = ArtifactStore(store_dir)
        trace = generate_trace(get_profile("gzip"), 800, seed=1)
        store.save_trace(trace, "gzip", 800, 1)
        path = next(p for p, _ in store._entries("traces"))
        with open(path, "r+b") as handle:
            handle.truncate(16)
        assert main(["store", "verify", "--dir", store_dir]) == 1
        assert "1 corrupt" in capsys.readouterr().out
