"""Serving-tier tests: warm/cold figures, single-flight, sweeps, HTTP."""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exec import ArtifactStore, set_active_store, set_attempt_hook
from repro.experiments.figures import ARTIFACTS, run_figures
from repro.obs.metrics import MetricsRegistry
from repro.serve import FigureService, make_server
from repro.serve.service import JSON_TYPE, RETRY_AFTER_SECONDS, TEXT_TYPE

SCALE = dict(num_instructions=600, warmup=300)
BENCHMARKS = ("gzip",)


class Boom(RuntimeError):
    """Deterministic injected failure."""


@pytest.fixture
def hook():
    """Install-and-restore wrapper around set_attempt_hook."""
    installed = []

    def install(fn):
        installed.append(set_attempt_hook(fn))
        return fn

    yield install
    while installed:
        set_attempt_hook(installed.pop())


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def active(store):
    """Install ``store`` process-wide for the test, restore after."""
    previous = set_active_store(store)
    yield store
    set_active_store(previous)


def make_service(tmp_path, **kwargs):
    defaults = dict(benchmarks=BENCHMARKS, jobs=1)
    defaults.update(SCALE)
    defaults.update(kwargs)
    return FigureService(str(tmp_path / "serve-out"), **defaults)


def wait_warm(service, name, timeout=120.0):
    """Poll ``figure()`` until 200; returns the artifact bytes."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _ = service.figure(name)
        if status == 200:
            return body
        if status == 500:
            raise AssertionError("regeneration failed: %r" % (body,))
        time.sleep(0.05)
    raise AssertionError("figure %s never warmed" % name)


class TestFigureEndpoint:
    def test_unknown_figure_is_404(self, tmp_path):
        service = make_service(tmp_path)
        status, body, _ = service.figure("fig99")
        assert status == 404
        assert "unknown figure" in body["error"]

    def test_unknown_format_is_400(self, tmp_path):
        service = make_service(tmp_path)
        status, body, _ = service.figure("fig8", fmt="csv")
        assert status == 400
        assert "format" in body["error"]

    def test_warm_figure_serves_artifact_bytes_with_zero_regens(
            self, tmp_path):
        out = tmp_path / "serve-out"
        run_figures(["fig8"], str(out), benchmarks=BENCHMARKS, jobs=1,
                    emit_json=True, **SCALE)
        service = make_service(tmp_path)
        try:
            status, body, ctype = service.figure("fig8")
            assert status == 200
            assert ctype == JSON_TYPE
            assert body == (out / "fig8.json").read_bytes()
            status, text, ctype = service.figure("fig8", fmt="txt")
            assert status == 200
            assert ctype == TEXT_TYPE
            assert text == (out / "fig8.txt").read_bytes()
            # warm requests never simulate
            assert service.regenerations == 0
        finally:
            service.close()

    def test_cold_figure_single_flight_under_concurrent_clients(
            self, tmp_path):
        service = make_service(tmp_path)
        try:
            statuses = []
            lock = threading.Lock()

            def client():
                status, _, _ = service.figure("fig8")
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # every client either got the warming hint or (if the
            # regeneration was quick) the finished artifact
            assert all(status in (200, 202) for status in statuses)
            body = wait_warm(service, "fig8")
            # K concurrent clients coalesced into ONE regeneration
            assert service.regenerations == 1
            # ... and the served bytes are identical to what
            # ``repro figures --emit-json`` writes for the same scale.
            ref = tmp_path / "ref"
            run_figures(["fig8"], str(ref), benchmarks=BENCHMARKS,
                        jobs=1, emit_json=True, **SCALE)
            assert body == (ref / "fig8.json").read_bytes()
        finally:
            service.close()

    def test_cold_figure_answers_202_with_retry_hint(self, tmp_path):
        service = make_service(tmp_path)
        service._regenerate = lambda key, payload: None
        try:
            status, body, _ = service.figure("fig9")
            assert status == 202
            assert body["status"] == "warming"
            assert body["figure"] == "fig9"
            assert body["retry_after"] == RETRY_AFTER_SECONDS
        finally:
            service.close()

    def test_failed_regeneration_reports_500_once_then_rearms(
            self, tmp_path, hook):
        def explode(job, attempt):
            raise Boom("injected")

        hook(explode)
        service = make_service(tmp_path)
        try:
            status, _, _ = service.figure("fig8")
            assert status == 202
            deadline = time.monotonic() + 60.0
            while service.figure_state("fig8") != "failed":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            status, body, _ = service.figure("fig8")
            assert status == 500
            assert "Boom" in body["error"]
            # the failure was cleared: the next request retries
            status, _, _ = service.figure("fig8")
            assert status == 202
        finally:
            service.close()

    def test_list_figures_reports_registry_and_state(self, tmp_path):
        out = tmp_path / "serve-out"
        run_figures(["table1"], str(out), emit_json=True, **SCALE)
        service = make_service(tmp_path)
        status, body, _ = service.list_figures()
        assert status == 200
        states = {f["name"]: f["state"] for f in body["figures"]}
        assert set(states) == set(ARTIFACTS)
        assert states["table1"] == "warm"
        assert states["fig8"] == "cold"


class TestSweep:
    def test_sweep_without_store_is_400(self, tmp_path):
        service = make_service(tmp_path)
        status, body, _ = service.sweep(["gzip"], ["decrypt-only"])
        assert status == 400
        assert "store" in body["error"]

    def test_sweep_bad_policy_is_400(self, tmp_path, active):
        service = make_service(tmp_path, store=active)
        status, _, _ = service.sweep(["gzip"], ["no-such-policy"])
        assert status == 400

    def test_cold_sweep_warms_through_the_store(self, tmp_path, active):
        service = make_service(tmp_path, store=active)
        try:
            ask = lambda: service.sweep(["gzip"], ["decrypt-only"],
                                        num_instructions=600, warmup=300)
            status, body, _ = ask()
            assert status == 202
            assert body["misses"] == 1
            assert body["cells"][0]["status"] == "miss"
            assert body["retry_after"] == RETRY_AFTER_SECONDS
            deadline = time.monotonic() + 120.0
            while True:
                status, body, _ = ask()
                if status == 200:
                    break
                assert time.monotonic() < deadline
                time.sleep(0.05)
            cell = body["cells"][0]
            assert cell["status"] == "hit"
            assert cell["cycles"] > 0
            assert cell["ipc"] > 0
            assert body["misses"] == 0
            assert service.regenerations == 1
        finally:
            service.close()


class TestHealthAndMetrics:
    def test_health_reports_queue_and_warm_state(self, tmp_path):
        out = tmp_path / "serve-out"
        run_figures(["table1"], str(out), emit_json=True, **SCALE)
        service = make_service(tmp_path)
        status, body, _ = service.health()
        assert status == 200
        assert body["status"] == "ok"
        assert "table1" in body["warm_figures"]
        assert body["queue_depth"] == 0
        assert body["regenerations"] == 0
        assert body["store"] is None

    def test_metrics_exposition_counts_requests(self, tmp_path):
        metrics = MetricsRegistry()
        service = make_service(tmp_path, metrics=metrics)
        service.figure("fig99")
        status, text, ctype = service.metrics_text()
        assert status == 200
        assert ctype == TEXT_TYPE
        assert "repro_serve_requests_total" in text
        snapshot = metrics.snapshot()
        family = snapshot["families"]["repro_serve_requests_total"]
        assert {"endpoint": "figure", "status": "404"} in \
            [s["labels"] for s in family["samples"]]

    def test_no_registry_means_empty_exposition(self, tmp_path):
        service = make_service(tmp_path)
        status, text, _ = service.metrics_text()
        assert status == 200
        assert text == ""


@pytest.fixture
def server(tmp_path):
    """A live HTTP server whose regenerations are no-ops (no sims)."""
    service = make_service(tmp_path)
    service._regenerate = lambda key, payload: None
    httpd = make_server(service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = "http://%s:%d" % httpd.server_address
    yield service, base
    httpd.shutdown()
    thread.join(timeout=10.0)
    httpd.server_close()
    service.close()


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


class TestHttp:
    def test_figures_listing_and_404_route(self, server):
        _, base = server
        status, body, _ = _get(base, "/figures")
        assert status == 200
        listing = json.loads(body)
        assert listing["kind"] == "figure-list"
        assert {f["name"] for f in listing["figures"]} == set(ARTIFACTS)
        status, _, _ = _get(base, "/nope")
        assert status == 404

    def test_warm_figure_bytes_are_served_verbatim(self, server):
        service, base = server
        payload = b'{\n "kind": "figure-series"\n}'
        with open(os.path.join(service.out_dir, "fig8.json"), "wb") as fh:
            fh.write(payload)
        status, body, headers = _get(base, "/figure/fig8")
        assert status == 200
        assert body == payload
        assert headers["Content-Type"] == JSON_TYPE

    def test_cold_figure_202_sets_retry_after_header(self, server):
        _, base = server
        status, body, headers = _get(base, "/figure/fig9")
        assert status == 202
        assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)
        assert json.loads(body)["status"] == "warming"

    def test_sweep_param_errors_are_400(self, server):
        _, base = server
        status, _, _ = _get(base, "/sweep?benchmark=gzip&policy=x&n=abc")
        assert status == 400
        status, _, _ = _get(base, "/sweep?benchmark=gzip&policy=x")
        assert status == 400  # no store attached

    def test_healthz_and_metricsz(self, server):
        _, base = server
        status, body, _ = _get(base, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, _, _ = _get(base, "/metricsz")
        assert status == 200
