"""``repro diff`` tests: cell flattening, tolerances, CLI exit codes."""

import json
import os

from repro.serve.diff import (
    diff_figures,
    flatten_cells,
    load_series_dir,
    render_diff,
)


def _payload(figure, y, extra=None):
    payload = {
        "format_version": 1,
        "kind": "figure-series",
        "figure": figure,
        "title": figure,
        "panels": [{
            "name": "p", "title": "p", "x_label": "benchmark",
            "series": [{"name": "s",
                        "points": [{"x": "gzip", "y": y}]}],
        }],
    }
    if extra is not None:
        payload["extra"] = extra
    return payload


def _write(dir_path, figure, y, extra=None, payload=None):
    os.makedirs(dir_path, exist_ok=True)
    payload = payload if payload is not None else \
        _payload(figure, y, extra=extra)
    with open(os.path.join(dir_path, figure + ".json"), "w") as fh:
        json.dump(payload, fh)


class TestLoadSeriesDir:
    def test_skips_manifests_and_garbage(self, tmp_path):
        _write(tmp_path, "fig8", 1.0)
        with open(tmp_path / "figures-manifest.json", "w") as fh:
            json.dump({"kind": "figures"}, fh)
        (tmp_path / "torn.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("not even json")
        assert list(load_series_dir(tmp_path)) == ["fig8"]

    def test_only_filter(self, tmp_path):
        _write(tmp_path, "fig8", 1.0)
        _write(tmp_path, "fig9", 2.0)
        assert list(load_series_dir(tmp_path, only={"fig9"})) == ["fig9"]

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_series_dir(tmp_path / "nope") == {}


class TestFlattenCells:
    def test_points_and_extra_become_cells(self):
        cells = flatten_cells(_payload("fig8", 1.5,
                                       extra={"advantage_cycles": 42}))
        assert cells == {("p", "s", "gzip"): 1.5,
                         ("extra", "advantage_cycles", ""): 42}


class TestDiffFigures:
    def test_identical_dirs(self, tmp_path):
        _write(tmp_path / "a", "fig8", 1.11)
        _write(tmp_path / "b", "fig8", 1.11)
        report = diff_figures(tmp_path / "a", tmp_path / "b")
        assert report["identical"] is True
        assert report["compared"] == 1
        assert report["changed_cells"] == 0
        assert "no changed cells" in render_diff(report)

    def test_changed_cell_is_located_exactly(self, tmp_path):
        _write(tmp_path / "a", "fig8", 1.11)
        _write(tmp_path / "b", "fig8", 1.12)
        report = diff_figures(tmp_path / "a", tmp_path / "b")
        assert report["identical"] is False
        assert report["changed_cells"] == 1
        [cell] = report["figures"]["fig8"]
        assert cell == {"panel": "p", "series": "s", "x": "gzip",
                        "a": 1.11, "b": 1.12}
        rendered = render_diff(report)
        assert "fig8" in rendered
        assert "1 changed cell(s) across 1 figure(s)" in rendered

    def test_tolerances_absorb_float_noise(self, tmp_path):
        _write(tmp_path / "a", "fig8", 1.11)
        _write(tmp_path / "b", "fig8", 1.12)
        assert diff_figures(tmp_path / "a", tmp_path / "b",
                            atol=0.05)["identical"] is True
        assert diff_figures(tmp_path / "a", tmp_path / "b",
                            rtol=0.05)["identical"] is True
        assert diff_figures(tmp_path / "a", tmp_path / "b",
                            atol=0.001)["identical"] is False

    def test_string_cells_ignore_tolerances(self, tmp_path):
        _write(tmp_path / "a", "table2", "LEAK")
        _write(tmp_path / "b", "table2", "blocked")
        report = diff_figures(tmp_path / "a", tmp_path / "b", atol=1e9)
        assert report["identical"] is False

    def test_figure_on_one_side_only(self, tmp_path):
        _write(tmp_path / "a", "fig8", 1.0)
        _write(tmp_path / "a", "fig9", 2.0)
        _write(tmp_path / "b", "fig8", 1.0)
        report = diff_figures(tmp_path / "a", tmp_path / "b")
        assert report["only_a"] == ["fig9"]
        assert report["only_b"] == []
        assert report["identical"] is False
        assert "only in a: fig9" in render_diff(report)

    def test_missing_cell_names_the_absent_side(self, tmp_path):
        wide = _payload("fig8", 1.0)
        wide["panels"][0]["series"][0]["points"].append(
            {"x": "mcf", "y": 2.0})
        _write(tmp_path / "a", "fig8", None, payload=wide)
        _write(tmp_path / "b", "fig8", 1.0)
        report = diff_figures(tmp_path / "a", tmp_path / "b")
        [cell] = report["figures"]["fig8"]
        assert cell["x"] == "mcf"
        assert cell["missing"] == "b"
        assert cell["a"] == 2.0 and cell["b"] is None
        assert "(absent)" in render_diff(report)

    def test_changed_extra_is_a_diff(self, tmp_path):
        _write(tmp_path / "a", "fig6", 1.0, extra={"advantage_cycles": 40})
        _write(tmp_path / "b", "fig6", 1.0, extra={"advantage_cycles": 41})
        report = diff_figures(tmp_path / "a", tmp_path / "b")
        [cell] = report["figures"]["fig6"]
        assert cell["panel"] == "extra"
        assert cell["series"] == "advantage_cycles"

    def test_empty_dirs_compare_nothing(self, tmp_path):
        report = diff_figures(tmp_path / "a", tmp_path / "b")
        assert report["compared"] == 0
        assert report["identical"] is True  # vacuously; CLI exits 2
        assert "no figure-series artifacts" in render_diff(report)


class TestDiffCli:
    def test_exit_codes_and_json_output(self, tmp_path, capsys):
        from repro.cli import main

        _write(tmp_path / "a", "fig8", 1.11)
        _write(tmp_path / "same", "fig8", 1.11)
        _write(tmp_path / "b", "fig8", 1.12)

        assert main(["diff", str(tmp_path / "a"),
                     str(tmp_path / "same")]) == 0
        capsys.readouterr()

        assert main(["diff", str(tmp_path / "a"),
                     str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert "1 changed cell(s)" in out

        assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--atol", "0.05"]) == 0
        capsys.readouterr()

        assert main(["diff", str(tmp_path / "x"),
                     str(tmp_path / "y")]) == 2
        capsys.readouterr()

        assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "figure-diff"
        assert report["changed_cells"] == 1

    def test_only_filter_restricts_comparison(self, tmp_path, capsys):
        from repro.cli import main

        _write(tmp_path / "a", "fig8", 1.11)
        _write(tmp_path / "a", "fig9", 2.0)
        _write(tmp_path / "b", "fig8", 1.11)
        _write(tmp_path / "b", "fig9", 3.0)
        assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--only", "fig8"]) == 0
        capsys.readouterr()
