"""Differential tests: real programs on the encrypted machine vs Python.

Hypothesis generates inputs; the RISC program runs over fully encrypted,
MAC-verified memory and must agree with the Python reference on every
input -- a whole-stack check of the ISA, assembler, loader and crypto
layer at once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import load_program, make_policy
from repro.func import programs
from repro.func.machine import SecureMachine


def execute(source, data, policy="authen-then-commit", max_steps=200_000):
    machine = SecureMachine(make_policy(policy))
    load_program(machine, source, data=data)
    result = machine.run(max_steps)
    assert result.halted, result.fault
    return machine, result


class TestFixedPrograms:
    def test_array_sum(self):
        _, r = execute(programs.ARRAY_SUM, programs.ARRAY_SUM_DATA)
        assert r.io_log == [programs.ARRAY_SUM_EXPECTED]

    def test_list_walk(self):
        _, r = execute(programs.LIST_WALK, programs.list_walk_data())
        assert r.io_log == [programs.LIST_WALK_EXPECTED]

    def test_fibonacci(self):
        _, r = execute(programs.FIBONACCI, None)
        assert r.io_log == [programs.FIBONACCI_EXPECTED]

    def test_store_reload(self):
        _, r = execute(programs.STORE_RELOAD, None)
        assert r.io_log == [programs.STORE_RELOAD_EXPECTED]

    def test_programs_verify_cleanly(self):
        """No false-positive integrity exceptions on benign runs."""
        _, r = execute(programs.MATMUL,
                       programs.matmul_data([[1] * 4] * 4, [[2] * 4] * 4),
                       policy="authen-then-issue")
        assert not r.detected


class TestSortDifferential:
    @settings(max_examples=8, deadline=None)
    @given(values=st.lists(st.integers(0, 10_000), min_size=32,
                           max_size=32))
    def test_insertion_sort_matches_python(self, values):
        _, r = execute(programs.INSERTION_SORT,
                       programs.insertion_sort_data(values))
        assert r.io_log == [programs.insertion_sort_expected(values)]

    def test_already_sorted_input(self):
        values = list(range(32))
        _, r = execute(programs.INSERTION_SORT,
                       programs.insertion_sort_data(values))
        assert r.io_log == [programs.insertion_sort_expected(values)]

    def test_reverse_sorted_input(self):
        values = list(range(32, 0, -1))
        _, r = execute(programs.INSERTION_SORT,
                       programs.insertion_sort_data(values))
        assert r.io_log == [programs.insertion_sort_expected(values)]

    def test_data_size_validation(self):
        with pytest.raises(ValueError):
            programs.insertion_sort_data([1, 2, 3])


class TestCrcDifferential:
    @settings(max_examples=8, deadline=None)
    @given(payload=st.binary(min_size=16, max_size=16))
    def test_crc32_matches_binascii(self, payload):
        _, r = execute(programs.CRC32, programs.crc32_data(payload))
        assert r.io_log == [programs.crc32_expected(payload)]

    def test_zero_payload(self):
        payload = bytes(16)
        _, r = execute(programs.CRC32, programs.crc32_data(payload))
        assert r.io_log == [programs.crc32_expected(payload)]

    def test_payload_size_validation(self):
        with pytest.raises(ValueError):
            programs.crc32_data(b"short")


class TestMatmulDifferential:
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_matmul_matches_python(self, data):
        matrix = st.lists(
            st.lists(st.integers(0, 100), min_size=4, max_size=4),
            min_size=4, max_size=4)
        a = data.draw(matrix)
        b = data.draw(matrix)
        _, r = execute(programs.MATMUL, programs.matmul_data(a, b))
        assert r.io_log == [programs.matmul_expected(a, b)]

    def test_identity_matrix(self):
        identity = [[1 if i == j else 0 for j in range(4)]
                    for i in range(4)]
        a = [[3, 1, 4, 1], [5, 9, 2, 6], [5, 3, 5, 8], [9, 7, 9, 3]]
        _, r = execute(programs.MATMUL, programs.matmul_data(a, identity))
        assert r.io_log == [programs.matmul_expected(a, identity)]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            programs.matmul_data([[1, 2]], [[3, 4]])


class TestProgramsUnderTamper:
    def test_tampered_sort_detected_not_wrong(self):
        """Integrity protection turns silent corruption into detection:
        a flipped data bit must never yield a wrong checksum under a
        verifying policy -- the run faults instead."""
        values = list(range(32))
        machine = SecureMachine(make_policy("authen-then-issue"))
        load_program(machine, programs.INSERTION_SORT,
                     data=programs.insertion_sort_data(values))
        machine.mem.flip_bits(0x7000, b"\x00\x00\x00\x40")
        result = machine.run(200_000)
        assert result.detected
        assert result.io_log == []

    def test_tampered_sort_silently_wrong_without_auth(self):
        values = list(range(32))
        machine = SecureMachine(make_policy("decrypt-only"))
        load_program(machine, programs.INSERTION_SORT,
                     data=programs.insertion_sort_data(values))
        machine.mem.flip_bits(0x7000, b"\x00\x00\x00\x40")
        result = machine.run(200_000)
        assert result.halted
        assert result.io_log != [programs.insertion_sort_expected(values)]
