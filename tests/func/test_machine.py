"""Functional secure machine tests: ISA semantics, crypto layer, windows."""

import pytest

from repro.errors import IntegrityError
from repro.func.loader import load_bytes, load_program, load_words
from repro.func.machine import LINE_BYTES, PageFault, SecureMachine
from repro.policies.registry import make_policy


def machine(policy="authen-then-commit", **kwargs):
    return SecureMachine(make_policy(policy), **kwargs)


class TestIsaSemantics:
    def run_src(self, src, regs=None, policy="decrypt-only", steps=1000,
                **kwargs):
        m = machine(policy, **kwargs)
        if regs:
            for reg, value in regs.items():
                m.regs[reg] = value
        load_program(m, src)
        result = m.run(steps)
        return m, result

    def test_arithmetic(self):
        m, r = self.run_src("""
            addi r1, r0, 6
            addi r2, r0, 7
            mul  r3, r1, r2
            sub  r4, r3, r1
            out  r4
            halt
        """)
        assert r.io_log == [36]
        assert r.halted

    def test_logic_and_shifts(self):
        m, r = self.run_src("""
            addi r1, r0, 0x0ff0
            andi r2, r1, 0x00f0
            ori  r3, r2, 0x0001
            slli r4, r3, 4
            srli r5, r4, 8
            out  r2
            out  r3
            out  r4
            out  r5
            halt
        """)
        assert r.io_log == [0xF0, 0xF1, 0xF10, 0xF]

    def test_signed_compare_and_branch(self):
        m, r = self.run_src("""
            addi r1, r0, -5
            addi r2, r0, 3
            blt  r1, r2, neg
            out  r0
            halt
        neg:
            addi r3, r0, 1
            out  r3
            halt
        """)
        assert r.io_log == [1]

    def test_memory_roundtrip(self):
        m, r = self.run_src("""
            lui  r1, 0x0
            ori  r1, r1, 0x2000
            addi r2, r0, 1234
            sw   r2, 0(r1)
            lw   r3, 0(r1)
            out  r3
            halt
        """)
        assert r.io_log == [1234]

    def test_byte_access(self):
        m, r = self.run_src("""
            lui  r1, 0x0
            ori  r1, r1, 0x2000
            addi r2, r0, 0xab
            sb   r2, 3(r1)
            lb   r3, 3(r1)
            out  r3
            halt
        """)
        assert r.io_log == [0xAB]

    def test_loop_with_jal(self):
        m, r = self.run_src("""
            addi r1, r0, 0
            addi r2, r0, 5
        loop:
            addi r1, r1, 10
            addi r2, r2, -1
            bne  r2, r0, loop
            out  r1
            halt
        """)
        assert r.io_log == [50]

    def test_jalr_links(self):
        m, r = self.run_src("""
            addi r1, r0, 12       ; byte address of target (word 3)
            jalr r2, r1
            halt                   ; skipped
        target:
            out  r2
            halt
        """)
        # jalr at word 1 -> link value = 8
        assert r.io_log == [8]

    def test_r0_is_hardwired_zero(self):
        m, r = self.run_src("""
            addi r0, r0, 99
            out  r0
            halt
        """)
        assert r.io_log == [0]

    def test_max_steps_stops_infinite_loop(self):
        m, r = self.run_src("loop:\n jmp loop", steps=50)
        assert not r.halted
        assert r.steps == 50


class TestCryptoLayer:
    def test_memory_is_really_encrypted(self):
        m = machine()
        load_words(m, 0x2000, [0xCAFEBABE])
        stored = m.mem.read(0x2000, 4)
        assert stored != b"\xca\xfe\xba\xbe"
        assert m.peek_plaintext(0x2000, 4) == b"\xca\xfe\xba\xbe"

    def test_counter_bumps_on_rewrite(self):
        m = machine()
        load_words(m, 0x2000, [1])
        first = m.mem.read(0x2000, 4)
        load_words(m, 0x2000, [1])
        assert m.mem.read(0x2000, 4) != first  # fresh pad

    def test_macs_stored_per_line(self):
        m = machine()
        load_words(m, 0x2000, [1, 2, 3])
        assert (0x2000 // LINE_BYTES) * LINE_BYTES in m.mac_store

    def test_bit_flip_flips_plaintext(self):
        """Counter-mode malleability end to end."""
        m = machine()
        load_words(m, 0x2000, [0])
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\xff")
        assert m.peek_plaintext(0x2000, 4) == b"\x00\x00\x00\xff"

    def test_loader_line_rmw_preserves_neighbours(self):
        m = machine()
        load_words(m, 0x2000, [111, 222])
        load_words(m, 0x2004, [999])
        assert int.from_bytes(m.peek_plaintext(0x2000, 4), "big") == 111
        assert int.from_bytes(m.peek_plaintext(0x2004, 4), "big") == 999

    def test_load_bytes_unaligned(self):
        m = machine()
        load_bytes(m, 0x2003, b"hello-world-across-lines" * 2)
        assert m.peek_plaintext(0x2003, 48) == b"hello-world-across-lines" * 2


class TestTamperDetection:
    SRC = """
        lui  r1, 0x0
        ori  r1, r1, 0x2000
        lw   r2, 0(r1)
        out  r2
        halt
    """

    def test_untampered_run_verifies(self):
        m = machine("authen-then-commit")
        load_program(m, self.SRC, data={0x2000: [7]})
        r = m.run()
        assert r.halted and not r.detected
        assert r.io_log == [7]

    def test_data_tamper_detected_at_window(self):
        m = machine("authen-then-commit")
        load_program(m, self.SRC, data={0x2000: [7]})
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\x01")
        r = m.run()
        assert r.detected
        assert isinstance(r.fault, IntegrityError)

    def test_issue_policy_detects_before_use(self):
        m = machine("authen-then-issue")
        load_program(m, self.SRC, data={0x2000: [7]})
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\x01")
        r = m.run()
        assert r.detected
        assert r.io_log == []  # the tampered value never reached I/O

    def test_commit_policy_gates_io(self):
        """Speculation proceeds, but OUT waits for verification."""
        m = machine("authen-then-commit")
        load_program(m, self.SRC, data={0x2000: [7]})
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\x01")
        r = m.run()
        assert r.io_log == []

    def test_write_policy_leaks_io_but_protects_memory(self):
        src = """
            lui  r1, 0x0
            ori  r1, r1, 0x2000
            lw   r2, 0(r1)
            out  r2               ; unverified I/O (allowed under write)
            sw   r2, 4(r1)        ; memory write forces verification
            halt
        """
        m = machine("authen-then-write")
        load_program(m, src, data={0x2000: [7]})
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\x01")
        r = m.run()
        assert r.io_log == [6]     # flipped low bit observable on I/O
        assert r.detected          # but the store never landed
        assert int.from_bytes(m.peek_plaintext(0x2004, 4), "big") == 0

    def test_decrypt_only_never_detects(self):
        m = machine("decrypt-only")
        load_program(m, self.SRC, data={0x2000: [7]})
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\x01")
        r = m.run()
        assert not r.detected
        assert r.io_log == [6]

    def test_mac_splice_to_other_line_detected(self):
        """Relocating a valid (cipher, MAC) pair is caught (address
        binding in the MAC)."""
        m = machine("authen-then-commit")
        load_program(m, self.SRC, data={0x2000: [7], 0x2020: [9]})
        line_a, line_b = 0x2000, 0x2020
        m.mem.write(line_b, m.mem.read(line_a, LINE_BYTES))
        m.mac_store[line_b] = m.mac_store[line_a]
        m.counter_store[line_b] = m.counter_store[line_a]
        m._plain_cache.pop(line_b, None)
        m.pc = 0
        # Read the spliced line.
        src = """
            lui  r1, 0x0
            ori  r1, r1, 0x2020
            lw   r2, 0(r1)
            halt
        """
        load_program(m, src, base_address=0x400)
        r = m.run()
        assert r.detected


class TestVirtualMemory:
    def test_unmapped_page_faults_and_logs(self):
        m = machine("decrypt-only", use_vm=True)
        load_program(m, """
            lui  r1, 0x00ab
            lw   r2, 0(r1)
            halt
        """)
        r = m.run()
        assert not r.halted
        assert r.fault_log == [0x00AB0000]

    def test_mapped_page_translates(self):
        m = machine("decrypt-only", use_vm=True)
        load_program(m, """
            lui  r1, 0x0
            ori  r1, r1, 0x2000
            lw   r2, 0(r1)
            halt
        """, data={0x2000: [5]})
        r = m.run()
        assert r.halted

    def test_commit_policy_defers_fault_behind_verification(self):
        """A tampered pointer's page fault cannot be logged before the
        tampering is detected (precise exceptions, Section 3.3)."""
        m = machine("authen-then-commit", use_vm=True)
        load_program(m, """
            lui  r1, 0x0
            ori  r1, r1, 0x2000
            lw   r2, 0(r1)
            lw   r3, 0(r2)
            halt
        """, data={0x2000: [0x2100]})
        # Turn the benign pointer into an unmapped one.
        m.mem.flip_bits(0x2000, (0x2100 ^ 0x00AB0000).to_bytes(4, "big"))
        r = m.run()
        assert r.detected
        assert r.fault_log == []


class TestStepBudgetAndWindows:
    def test_window_scales_with_lazy_policy(self):
        lazy = machine("lazy")
        commit = machine("authen-then-commit")
        assert lazy.auth_delay > commit.auth_delay

    def test_decrypt_only_has_no_auth(self):
        assert machine("decrypt-only").auth_delay is None
