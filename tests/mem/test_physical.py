"""Physical memory tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem.physical import PhysicalMemory


class TestBasics:
    def test_zero_initialised(self):
        mem = PhysicalMemory(1 << 20)
        assert mem.read(0x1234, 8) == bytes(8)

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_cross_page_access(self):
        mem = PhysicalMemory(1 << 20)
        data = bytes(range(64))
        mem.write(4096 - 20, data)
        assert mem.read(4096 - 20, 64) == data

    def test_word_accessors(self):
        mem = PhysicalMemory(1 << 20)
        mem.write_word(8, 0xDEADBEEF)
        assert mem.read_word(8) == 0xDEADBEEF
        assert mem.read(8, 4) == b"\xde\xad\xbe\xef"  # big-endian

    def test_word_alignment_enforced(self):
        mem = PhysicalMemory(1 << 20)
        with pytest.raises(MemoryError_):
            mem.read_word(2)
        with pytest.raises(MemoryError_):
            mem.write_word(5, 0)

    def test_bounds(self):
        mem = PhysicalMemory(1024)
        with pytest.raises(MemoryError_):
            mem.read(1020, 8)
        with pytest.raises(MemoryError_):
            mem.write(-1, b"x")

    def test_bad_size(self):
        with pytest.raises(MemoryError_):
            PhysicalMemory(0)

    def test_sparse_pages(self):
        mem = PhysicalMemory(1 << 32)
        mem.write(5 * 4096, b"x")
        assert mem.touched_pages() == [5]


class TestFlipBits:
    def test_flip_is_xor(self):
        mem = PhysicalMemory(1 << 16)
        mem.write(0, b"\xff\x00\xaa")
        mem.flip_bits(0, b"\x0f\xf0\xff")
        assert mem.read(0, 3) == b"\xf0\xf0\x55"

    def test_double_flip_restores(self):
        mem = PhysicalMemory(1 << 16)
        mem.write(10, b"secret42")
        mem.flip_bits(10, b"\x55" * 8)
        mem.flip_bits(10, b"\x55" * 8)
        assert mem.read(10, 8) == b"secret42"


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        addr=st.integers(0, 8000),
        data=st.binary(min_size=1, max_size=200),
    )
    def test_roundtrip_anywhere(self, addr, data):
        mem = PhysicalMemory(1 << 16)
        mem.write(addr, data)
        assert mem.read(addr, len(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(
        first=st.binary(min_size=4, max_size=32),
        second=st.binary(min_size=4, max_size=32),
    )
    def test_disjoint_writes_do_not_interfere(self, first, second):
        mem = PhysicalMemory(1 << 16)
        mem.write(0, first)
        mem.write(1000, second)
        assert mem.read(0, len(first)) == first
        assert mem.read(1000, len(second)) == second
