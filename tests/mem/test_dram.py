"""SDRAM timing model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig
from repro.mem.bus import BandwidthBus
from repro.mem.controller import MemoryController
from repro.mem.dram import DramModel, PageStatus

CFG = DramConfig()  # 5 core cycles/bus clock, CAS=100, RCD=35, RP=35 cycles


class TestBus:
    def test_transfer_cycles(self):
        bus = BandwidthBus(width_bytes=8, cycles_per_beat=5)
        assert bus.transfer_cycles(64) == 40
        assert bus.transfer_cycles(1) == 5
        assert bus.transfer_cycles(9) == 10

    def test_serialisation(self):
        bus = BandwidthBus(width_bytes=8, cycles_per_beat=5)
        s1, e1 = bus.reserve(0, 64)
        s2, e2 = bus.reserve(0, 64)
        assert (s1, e1) == (0, 40)
        assert (s2, e2) == (40, 80)

    def test_idle_gap_preserved(self):
        bus = BandwidthBus(width_bytes=8, cycles_per_beat=5)
        bus.reserve(0, 8)
        start, _ = bus.reserve(100, 8)
        assert start == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BandwidthBus(width_bytes=0)


class TestRowBuffer:
    def test_first_access_is_empty_page(self):
        dram = DramModel(CFG)
        assert dram.classify(0) is PageStatus.EMPTY
        result = dram.access(0, 0)
        assert result.status is PageStatus.EMPTY

    def test_second_access_same_row_hits(self):
        dram = DramModel(CFG)
        dram.access(0, 0)
        assert dram.classify(64) is PageStatus.HIT

    def test_conflict_on_same_bank_other_row(self):
        dram = DramModel(CFG)
        dram.access(0, 0)
        # Same bank: row index differs by num_banks rows.
        conflict_addr = CFG.row_bytes * CFG.num_banks
        assert dram.classify(conflict_addr) is PageStatus.CONFLICT

    def test_other_bank_is_independent(self):
        dram = DramModel(CFG)
        dram.access(0, 0)
        assert dram.classify(CFG.interleave_bytes) is PageStatus.EMPTY

    def test_latency_ordering(self):
        """conflict > empty > hit for back-to-back idle accesses."""
        def latency_of(status_addr_pairs):
            dram = DramModel(CFG)
            last = None
            for addr in status_addr_pairs:
                last = dram.access(addr, 10_000 * (1 + status_addr_pairs.index(addr)))
            return last.done_cycle - last.start_cycle

        hit = latency_of([0, 64])
        empty = latency_of([0])
        conflict = latency_of([0, CFG.row_bytes * CFG.num_banks])
        assert conflict > empty > hit

    def test_hit_latency_value(self):
        dram = DramModel(CFG)
        dram.access(0, 0)
        result = dram.access(64, 10_000)
        assert result.done_cycle - result.start_cycle == (
            CFG.cas_cycles + dram.bus.transfer_cycles(64)
        )

    def test_critical_word_before_done(self):
        dram = DramModel(CFG)
        result = dram.access(0, 0)
        assert result.start_cycle <= result.critical_cycle < result.done_cycle

    def test_reset(self):
        dram = DramModel(CFG)
        dram.access(0, 0)
        dram.reset()
        assert dram.classify(0) is PageStatus.EMPTY
        assert dram.stats["accesses"].value == 0


class TestTimingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 1 << 24).map(lambda a: a & ~63),
                       min_size=1, max_size=20),
    )
    def test_monotonic_completion_under_contention(self, addrs):
        """Issuing at cycle 0, completions never go backwards in time."""
        dram = DramModel(CFG)
        last_done = 0
        for addr in addrs:
            result = dram.access(addr, 0)
            assert result.done_cycle >= last_done
            last_done = result.done_cycle

    @settings(max_examples=40, deadline=None)
    @given(cycle=st.integers(0, 10**6), addr=st.integers(0, 1 << 30))
    def test_no_time_travel(self, cycle, addr):
        dram = DramModel(CFG)
        result = dram.access(addr & ~63, cycle)
        assert result.start_cycle >= cycle
        assert result.done_cycle > result.start_cycle


class TestController:
    def test_mac_rider_widens_transfer(self):
        plain = MemoryController(CFG, line_bytes=64, mac_rider_bytes=0)
        tagged = MemoryController(CFG, line_bytes=64, mac_rider_bytes=8)
        a = plain.fetch_line(0, 0)
        b = tagged.fetch_line(0, 0)
        assert b.latency == a.latency + plain.dram.bus.cycles_per_beat

    def test_metadata_access_counted(self):
        ctl = MemoryController(CFG)
        ctl.fetch_metadata(4096, 0, 8)
        assert ctl.stats["metadata_accesses"].value == 1

    def test_read_latency_histogram(self):
        ctl = MemoryController(CFG)
        ctl.fetch_line(0, 0)
        ctl.fetch_line(64, 1000)
        assert ctl.stats["read_latency"].total == 2

    def test_writes_counted_separately(self):
        ctl = MemoryController(CFG)
        ctl.write_line(0, 0)
        assert ctl.stats["line_writes"].value == 1
        assert ctl.stats["line_reads"].value == 0
