"""Golden timing-parity suite.

The hot-path optimisations (packed traces, O(1) LRU, flattened hierarchy
and engine fast paths, issue-calendar pruning) must be *timing-neutral*:
cycle counts, IPC and every StatGroup counter bit-identical to the
pinned reference.  These tests re-run the golden matrix cell by cell.
"""

import pytest

from repro.config import SimConfig
from repro.exec.cache import cached_trace
from repro.perf.golden import (
    GOLDEN_CYCLES,
    GOLDEN_DIGESTS,
    GOLDEN_INSTRUCTIONS,
    GOLDEN_WARMUP,
    golden_cells,
    stats_digest,
)
from repro.sim.runner import build_simulator

CELLS = list(golden_cells())


def run_cell(bench, policy):
    config = SimConfig()
    trace = cached_trace(bench, GOLDEN_INSTRUCTIONS + GOLDEN_WARMUP,
                         config.seed)
    core, hier = build_simulator(config, policy)
    result = core.run(trace, warmup=GOLDEN_WARMUP)
    return result, hier


class TestGoldenParity:
    @pytest.mark.parametrize("bench,policy", CELLS,
                             ids=["%s/%s" % cell for cell in CELLS])
    def test_cycles_bit_identical(self, bench, policy):
        result, _ = run_cell(bench, policy)
        key = "%s/%s" % (bench, policy)
        assert result.cycles == GOLDEN_CYCLES[key]
        assert result.instructions == GOLDEN_INSTRUCTIONS

    @pytest.mark.parametrize("bench,policy",
                             [("mcf", "authen-then-commit"),
                              ("swim", "decrypt-only"),
                              ("twolf", "authen-then-write")])
    def test_full_stats_digest(self, bench, policy):
        """Beyond cycles: every counter and histogram bucket must match."""
        result, hier = run_cell(bench, policy)
        key = "%s/%s" % (bench, policy)
        digest = stats_digest(result.stats.as_dict(), hier.miss_summary())
        assert digest == GOLDEN_DIGESTS[key]

    def test_check_goldens_is_clean(self):
        from repro.perf.bench import check_goldens

        assert check_goldens() == []

    def test_digest_is_sensitive_to_counter_drift(self):
        """A single off-by-one in any counter must change the digest."""
        result, hier = run_cell("swim", "decrypt-only")
        stats = result.stats.as_dict()
        reference = stats_digest(stats, hier.miss_summary())
        name = sorted(k for k, v in stats.items()
                      if isinstance(v, int))[0]
        stats[name] += 1
        assert stats_digest(stats, hier.miss_summary()) != reference
