"""Perf-harness tests: matrix runner, report writer, CLI wiring."""

import json

from repro.perf.bench import (render_table, run_matrix, time_cell,
                              write_report)
from repro.perf.golden import PRE_PR_BASELINE


def small_matrix():
    return run_matrix(benchmarks=("swim",),
                      policies=("decrypt-only", "authen-then-commit"),
                      num_instructions=1200, warmup=400, repeats=1)


class TestTimeCell:
    def test_reports_throughput_and_timing(self):
        cell = time_cell("swim", "decrypt-only", num_instructions=1200,
                         warmup=400, repeats=2)
        assert cell["instructions_simulated"] == 1600
        assert cell["instructions_measured"] == 1200
        assert cell["wall_seconds"] > 0
        assert cell["instructions_per_second"] > 0
        assert cell["cycles"] > 0
        assert cell["ipc"] > 0

    def test_timing_is_deterministic_in_cycles(self):
        a = time_cell("swim", "decrypt-only", num_instructions=1200,
                      warmup=400)
        b = time_cell("swim", "decrypt-only", num_instructions=1200,
                      warmup=400)
        assert a["cycles"] == b["cycles"]
        assert a["ipc"] == b["ipc"]


class TestRunMatrix:
    def test_cells_and_aggregate(self):
        report = small_matrix()
        assert len(report["cells"]) == 2
        agg = report["aggregate"]
        assert agg["instructions"] == 2 * 1600
        assert agg["instructions_per_second"] > 0
        assert report["speedup_vs_baseline"] == (
            agg["instructions_per_second"]
            / PRE_PR_BASELINE["instructions_per_second"])

    def test_render_table_mentions_every_cell(self):
        report = small_matrix()
        table = render_table(report)
        assert "decrypt-only" in table
        assert "authen-then-commit" in table
        assert "speedup" in table


class TestWriteReport:
    def test_report_round_trips(self, tmp_path):
        report = small_matrix()
        path = write_report(report, path=str(tmp_path / "BENCH_test.json"))
        payload = json.loads(open(path).read())
        assert payload["baseline"]["instructions_per_second"] == \
            PRE_PR_BASELINE["instructions_per_second"]
        assert len(payload["cells"]) == 2
        assert "generated_at" in payload

    def test_default_path_is_stamped(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_report(small_matrix())
        assert "BENCH_" in path and path.endswith(".json")


class TestCli:
    def test_perf_check_exits_clean(self, capsys):
        from repro.cli import main

        assert main(["perf", "--check"]) == 0
        assert "parity OK" in capsys.readouterr().out

    def test_perf_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "bench.json")
        code = main(["perf", "-n", "1200", "--warmup", "400",
                     "--repeats", "1", "--out", out])
        assert code == 0
        payload = json.loads(open(out).read())
        assert payload["speedup_vs_baseline"] > 0
        assert "inst/s" in capsys.readouterr().out


class TestStoreBench:
    def test_phases_identical_and_warm_hits(self, tmp_path):
        from repro.perf.bench import render_store_table, run_store_bench

        report = run_store_bench(benchmarks=("gzip",),
                                 policies=("decrypt-only",
                                           "authen-then-commit"),
                                 num_instructions=1500, warmup=750,
                                 store_dir=str(tmp_path / "store"))
        assert report["identical"]
        assert report["warm_store_hits"] == report["jobs"]
        assert report["warm_wall_seconds"] > 0
        assert report["store_bytes"] > 0
        text = render_store_table(report)
        assert "no-store" in text
        assert "bit-identical" in text

    def test_cli_store_bench_flag(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(["perf", "-n", "1500", "--warmup", "750",
                     "--repeats", "1", "--no-group", "--no-json",
                     "--store-bench"])
        assert code == 0
        out = capsys.readouterr().out
        assert "artifact store (no-store vs cold vs warm):" in out
        assert "bit-identical across all three phases" in out
