"""Pseudo-instruction tests (assembler expansion + machine semantics)."""

import pytest

from repro import load_program, make_policy
from repro.errors import IsaError
from repro.func.machine import SecureMachine
from repro.isa.assembler import assemble
from repro.isa.encoding import decode


class TestExpansion:
    def test_li_is_always_two_words(self):
        assert len(assemble("li r1, 0x12345678")) == 2
        assert len(assemble("li r1, 5")) == 2

    def test_li_encoding(self):
        words = assemble("li r3, 0xdeadbeef")
        first, second = decode(words[0]), decode(words[1])
        assert first.op == "lui" and (first.imm & 0xFFFF) == 0xDEAD
        assert second.op == "ori"

    def test_mv(self):
        inst = decode(assemble("mv r4, r7")[0])
        assert (inst.op, inst.rd, inst.rs1, inst.rs2) == ("add", 4, 7, 0)

    def test_b_is_jmp(self):
        words = assemble("target:\nnop\nb target")
        assert decode(words[1]).op == "jmp"

    def test_labels_account_for_expansion(self):
        words = assemble("""
            li   r1, 0x10000
            after:
            jmp  after
        """)
        # li expands to two words, so 'after' is word 2.
        assert decode(words[2]).imm == 2

    def test_operand_count_validation(self):
        with pytest.raises(IsaError):
            assemble("li r1")
        with pytest.raises(IsaError):
            assemble("mv r1, r2, r3")


class TestMachineSemantics:
    def run_src(self, src):
        machine = SecureMachine(make_policy("decrypt-only"))
        load_program(machine, src)
        result = machine.run(1000)
        assert result.halted
        return result

    def test_li_loads_full_word(self):
        result = self.run_src("""
            li  r1, 0xdeadbeef
            out r1
            halt
        """)
        assert result.io_log == [0xDEADBEEF]

    def test_mv_copies(self):
        result = self.run_src("""
            addi r2, r0, 77
            mv   r3, r2
            out  r3
            halt
        """)
        assert result.io_log == [77]

    def test_not_flips_all_bits(self):
        result = self.run_src("""
            li  r1, 0x0f0f0f0f
            not r2, r1
            out r2
            halt
        """)
        assert result.io_log == [0xF0F0F0F0]
