"""Encode/decode roundtrip and validation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.encoding import decode, encode, try_decode
from repro.isa.instructions import (
    OPCODES,
    Instruction,
    InstructionFormat,
    OpClass,
    op_class,
)

R_OPS = sorted(n for n, (_, f, _) in OPCODES.items() if f is InstructionFormat.R)
I_OPS = sorted(n for n, (_, f, _) in OPCODES.items() if f is InstructionFormat.I)
J_OPS = sorted(n for n, (_, f, _) in OPCODES.items() if f is InstructionFormat.J)


def _instructions():
    """Hypothesis strategy over every encodable instruction."""
    regs = st.integers(0, 31)
    r_type = st.builds(
        Instruction,
        op=st.sampled_from(R_OPS),
        rd=regs,
        rs1=regs,
        rs2=regs,
    )
    i_type = st.builds(
        Instruction,
        op=st.sampled_from(I_OPS),
        rd=regs,
        rs1=regs,
        imm=st.integers(-(1 << 15), (1 << 15) - 1),
    )
    j_type = st.builds(
        Instruction,
        op=st.sampled_from(J_OPS),
        imm=st.integers(0, (1 << 26) - 1),
    )
    return st.one_of(r_type, i_type, j_type)


class TestRoundtrip:
    @settings(max_examples=300, deadline=None)
    @given(inst=_instructions())
    def test_decode_inverts_encode(self, inst):
        word = encode(inst)
        back = decode(word)
        if inst.op == "nop":
            assert back.op == "nop"
            return
        assert back.op == inst.op
        fmt = inst.fmt
        if fmt is InstructionFormat.R:
            assert (back.rd, back.rs1, back.rs2) == (inst.rd, inst.rs1, inst.rs2)
        elif fmt is InstructionFormat.I:
            assert (back.rd, back.rs1, back.imm) == (inst.rd, inst.rs1, inst.imm)
        else:
            assert back.imm == inst.imm

    def test_nop_is_all_zero(self):
        assert encode(Instruction("nop")) == 0
        assert decode(0).op == "nop"


class TestValidation:
    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            Instruction("frobnicate")

    def test_register_bounds(self):
        with pytest.raises(IsaError):
            Instruction("add", rd=32)

    def test_immediate_bounds(self):
        with pytest.raises(IsaError):
            encode(Instruction("addi", rd=1, rs1=1, imm=1 << 15))
        with pytest.raises(IsaError):
            encode(Instruction("addi", rd=1, rs1=1, imm=-(1 << 15) - 1))

    def test_jump_target_bounds(self):
        with pytest.raises(IsaError):
            encode(Instruction("jmp", imm=1 << 26))

    def test_unknown_opcode_raises(self):
        with pytest.raises(IsaError):
            decode(0x3D << 26)  # opcode 0x3d is unassigned

    def test_noncanonical_nop_rejected(self):
        with pytest.raises(IsaError):
            decode(0x00000001)

    def test_r_type_padding_must_be_zero(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        with pytest.raises(IsaError):
            decode(word | 0x7)

    def test_try_decode_swallow(self):
        assert try_decode(0x3D << 26) is None
        assert try_decode(encode(Instruction("halt"))).op == "halt"

    def test_word_range(self):
        with pytest.raises(IsaError):
            decode(-1)
        with pytest.raises(IsaError):
            decode(1 << 32)


class TestSemanticsMetadata:
    def test_store_sources_include_data_register(self):
        inst = Instruction("sw", rd=5, rs1=2, imm=8)
        assert set(inst.sources()) == {2, 5}
        assert inst.destination() is None

    def test_branch_has_no_destination(self):
        inst = Instruction("beq", rs1=1, rd=2, imm=-4)
        assert inst.destination() is None
        assert set(inst.sources()) == {1, 2}

    def test_load_destination(self):
        inst = Instruction("lw", rd=7, rs1=3, imm=0)
        assert inst.destination() == 7
        assert inst.sources() == (3,)

    def test_write_to_r0_discarded(self):
        assert Instruction("add", rd=0, rs1=1, rs2=2).destination() is None

    def test_jal_links_r31(self):
        assert Instruction("jal", imm=10).destination() == 31

    def test_op_classes(self):
        assert op_class("lw") is OpClass.LOAD
        assert op_class("sw") is OpClass.STORE
        assert op_class("beq") is OpClass.BRANCH
        assert op_class("mul") is OpClass.IMUL
        assert op_class("jmp") is OpClass.JUMP

    def test_lui_has_no_register_sources(self):
        assert Instruction("lui", rd=1, imm=5).sources() == ()
