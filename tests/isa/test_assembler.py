"""Assembler and disassembler tests."""

import pytest

from repro.errors import IsaError
from repro.isa.assembler import assemble, assemble_to_bytes
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import decode


class TestBasicAssembly:
    def test_single_alu(self):
        words = assemble("add r1, r2, r3")
        inst = decode(words[0])
        assert (inst.op, inst.rd, inst.rs1, inst.rs2) == ("add", 1, 2, 3)

    def test_immediate(self):
        inst = decode(assemble("addi r1, r0, -7")[0])
        assert (inst.op, inst.imm) == ("addi", -7)

    def test_hex_immediate_reinterpreted(self):
        inst = decode(assemble("andi r1, r2, 0xff00")[0])
        assert inst.imm == 0xFF00 - 0x10000

    def test_memory_operand(self):
        inst = decode(assemble("lw r2, 4(r1)")[0])
        assert (inst.op, inst.rd, inst.rs1, inst.imm) == ("lw", 2, 1, 4)

    def test_negative_displacement(self):
        inst = decode(assemble("sw r2, -8(r5)")[0])
        assert inst.imm == -8

    def test_comments_and_blanks_ignored(self):
        words = assemble(
            """
            ; leading comment
            nop      # trailing comment

            halt
            """
        )
        assert len(words) == 2

    def test_zero_alias(self):
        inst = decode(assemble("add r1, zero, r3")[0])
        assert inst.rs1 == 0


class TestLabels:
    def test_forward_branch(self):
        words = assemble(
            """
            beq r1, r2, done
            nop
            done:
            halt
            """
        )
        inst = decode(words[0])
        # Offset is relative to the *next* instruction: skip exactly 'nop'.
        assert inst.imm == 1

    def test_backward_branch(self):
        words = assemble(
            """
            loop:
            nop
            bne r1, r0, loop
            """
        )
        assert decode(words[1]).imm == -2

    def test_jump_label_is_absolute_word_index(self):
        words = assemble(
            """
            nop
            target:
            nop
            jmp target
            """
        )
        assert decode(words[2]).imm == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(IsaError):
            assemble("a:\nnop\na:\nnop")

    def test_numeric_branch_offset(self):
        assert decode(assemble("beq r0, r0, -1")[0]).imm == -1


class TestDataDirectives:
    def test_word_literal(self):
        assert assemble(".word 0xdeadbeef")[0] == 0xDEADBEEF

    def test_word_list(self):
        assert assemble(".word 1, 2, 3") == [1, 2, 3]

    def test_space(self):
        assert assemble(".space 12") == [0, 0, 0]

    def test_space_must_be_word_multiple(self):
        with pytest.raises(IsaError):
            assemble(".space 6")

    def test_labels_count_data_words(self):
        words = assemble(
            """
            .word 0, 0
            entry:
            jmp entry
            """
        )
        assert decode(words[2]).imm == 2


class TestErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "frob r1, r2, r3",
            "add r1, r2",
            "lw r1, r2, r3",
            "addi r1, r0, notanumber",
            "add r1, r2, r99",
        ],
    )
    def test_bad_lines_rejected(self, line):
        with pytest.raises(IsaError):
            assemble(line)

    def test_unaligned_base_rejected(self):
        with pytest.raises(IsaError):
            assemble("nop", base_address=2)


class TestBytesAndDisassembly:
    def test_assemble_to_bytes_big_endian(self):
        data = assemble_to_bytes("jmp 1")
        assert len(data) == 4
        assert decode(int.from_bytes(data, "big")).op == "jmp"

    def test_disassemble_roundtrip_text(self):
        source = [
            "add r1, r2, r3",
            "addi r4, r1, -5",
            "lw r2, 8(r1)",
            "sw r2, 0(r3)",
            "beq r1, r2, 3",
            "lui r4, 0x1ebc",
            "jalr r1, r2",
            "out r5",
            "halt",
        ]
        words = assemble("\n".join(source))
        for line, word in zip(source, words):
            rendered = disassemble_word(word)
            # Re-assembling the rendering gives the identical word.
            assert assemble(rendered)[0] == word, (line, rendered)

    def test_bad_word_renders_as_data(self):
        assert disassemble_word(0x3D << 26).startswith(".word")

    def test_listing_format(self):
        listing = disassemble(assemble("nop\nhalt"), base_address=0x100)
        assert "0x00000100" in listing and "halt" in listing
