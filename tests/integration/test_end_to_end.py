"""Cross-module integration tests.

These exercise the whole stack -- workloads through the secure engine to
DRAM, policies on both the timing and functional sides -- and pin the
high-level invariants the paper's conclusions rest on.
"""

import pytest

from repro import (
    PolicySweep,
    SimConfig,
    generate_trace,
    get_profile,
    make_policy,
    run_trace,
)
from repro.attacks.harness import run_attack
from repro.experiments import ablations
from repro.sim.runner import build_simulator


class TestTimingFunctionalConsistency:
    """The same policy object drives both models consistently."""

    def test_every_policy_runs_both_models(self):
        from repro.attacks.pointer_conversion import PointerConversionAttack
        from repro.policies.registry import available_policies

        trace = generate_trace(get_profile("gzip"), 1500)
        for name in available_policies():
            timing = run_trace(trace, SimConfig(), name)
            assert timing.cycles > 0, name
            attack = PointerConversionAttack()
            machine, result = attack.run(make_policy(name))
            assert result.steps > 0, name

    def test_secure_policies_cost_performance(self):
        """Policies that block the side channel are the slow ones."""
        trace = generate_trace(get_profile("mgrid"), 9000)
        ipcs = {}
        leaks = {}
        for name in ("authen-then-issue", "authen-then-write",
                     "commit+fetch"):
            core, _ = build_simulator(SimConfig(), name)
            ipcs[name] = core.run(trace, warmup=4500).ipc
            leaks[name] = run_attack("pointer-conversion", name).leaked
        # authen-then-write is fast but leaks; the secure two are slower.
        assert not leaks["authen-then-issue"]
        assert not leaks["commit+fetch"]
        assert leaks["authen-then-write"]
        assert ipcs["authen-then-write"] > ipcs["authen-then-issue"]
        assert ipcs["authen-then-write"] > ipcs["commit+fetch"]


class TestSweepLevelInvariants:
    @pytest.fixture(scope="class")
    def sweep(self):
        return PolicySweep(
            ["twolf", "swim", "mcf"],
            ["authen-then-issue", "authen-then-write",
             "authen-then-commit", "authen-then-fetch", "commit+fetch"],
            num_instructions=8000,
            warmup=8000,
        ).run()

    def test_paper_ranking_on_averages(self, sweep):
        avg = {p: sweep.average_normalized(p) for p in sweep.policies}
        assert avg["authen-then-write"] == max(avg.values())
        assert avg["authen-then-write"] >= avg["authen-then-commit"]
        assert avg["authen-then-commit"] >= avg["authen-then-issue"]
        assert avg["authen-then-fetch"] >= avg["commit+fetch"] - 0.01

    def test_overheads_within_paper_ballpark(self, sweep):
        """Loose bands around the paper's averages (±0.12)."""
        avg = {p: sweep.average_normalized(p) for p in sweep.policies}
        paper = {
            "authen-then-issue": 0.87,
            "authen-then-write": 0.98,
            "authen-then-commit": 0.96,
            "authen-then-fetch": 0.92,
            "commit+fetch": 0.90,
        }
        for policy, expected in paper.items():
            assert abs(avg[policy] - expected) < 0.12, (policy, avg[policy])


class TestHashTreeIntegration:
    def test_tree_slows_all_schemes_but_keeps_ranking(self):
        trace = generate_trace(get_profile("swim"), 8000)
        flat_cfg = SimConfig()
        tree_cfg = SimConfig().with_secure(hash_tree_enabled=True)
        for policy in ("authen-then-issue", "authen-then-commit"):
            flat_core, _ = build_simulator(flat_cfg, policy)
            tree_core, _ = build_simulator(tree_cfg, policy)
            flat = flat_core.run(trace, warmup=4000).ipc
            tree = tree_core.run(trace, warmup=4000).ipc
            assert tree < flat, policy


class TestObfuscationIntegration:
    def test_obfuscation_hides_addresses_and_costs_ipc(self):
        # Functional: the pointer-conversion leak check fails because the
        # bus shows remapped addresses.
        result = run_attack("pointer-conversion", "commit+obfuscation")
        assert not result.leaked
        # Timing: obfuscation is the most expensive scheme.
        trace = generate_trace(get_profile("art"), 8000)
        plain_core, _ = build_simulator(SimConfig(), "authen-then-commit")
        obf_core, _ = build_simulator(SimConfig(), "commit+obfuscation")
        plain = plain_core.run(trace, warmup=4000).ipc
        obf = obf_core.run(trace, warmup=4000).ipc
        assert obf < plain


class TestAblationSanity:
    def test_drain_variant_not_faster_than_tag(self):
        result = ablations.fetch_variant_comparison(
            benchmarks=("twolf", "swim"), num_instructions=5000,
            warmup=5000)
        assert result["tag"] >= result["drain"] - 0.01

    def test_lazy_is_cheap(self):
        result = ablations.lazy_comparison(
            benchmarks=("twolf",), num_instructions=5000, warmup=5000)
        assert result["lazy"] >= 0.93
