"""Fault-injection property tests: the security model under random flips.

The strongest statement the functional model can make: under a verifying
policy, **no random ciphertext tampering ever produces silently wrong
output** -- every run either completes with the correct result (the flip
hit unused memory) or raises the integrity exception before bad data
reaches I/O.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import load_program, make_policy
from repro.func import programs
from repro.func.machine import SecureMachine


def fresh_machine(policy):
    machine = SecureMachine(make_policy(policy))
    load_program(machine, programs.ARRAY_SUM,
                 data=programs.ARRAY_SUM_DATA)
    return machine


# The program's whole working image: code at 0, data at 0x2000.
_TARGET_REGIONS = st.one_of(
    st.integers(0, 60),                    # code bytes
    st.integers(0x2000, 0x2000 + 255),     # data bytes
)


class TestRandomTamperNeverSilentlyWrong:
    @settings(max_examples=40, deadline=None)
    @given(addr=_TARGET_REGIONS, mask=st.integers(1, 255))
    def test_issue_policy_integrity(self, addr, mask):
        machine = fresh_machine("authen-then-issue")
        machine.mem.flip_bits(addr, bytes([mask]))
        result = machine.run(5000)
        if result.io_log:
            # Output happened: it must be the correct value, and the run
            # must have been clean.
            assert result.io_log == [programs.ARRAY_SUM_EXPECTED]
        if result.halted and not result.detected:
            assert result.io_log == [programs.ARRAY_SUM_EXPECTED]

    @settings(max_examples=40, deadline=None)
    @given(addr=_TARGET_REGIONS, mask=st.integers(1, 255))
    def test_commit_policy_io_integrity(self, addr, mask):
        """authen-then-commit gates I/O: output is never wrong even
        though speculation runs ahead."""
        machine = fresh_machine("authen-then-commit")
        machine.mem.flip_bits(addr, bytes([mask]))
        result = machine.run(5000)
        if result.io_log:
            assert result.io_log == [programs.ARRAY_SUM_EXPECTED]

    @settings(max_examples=25, deadline=None)
    @given(addr=st.integers(0x2000, 0x2000 + 255),
           mask=st.integers(1, 255))
    def test_data_flip_always_detected_by_issue(self, addr, mask):
        """Every data byte is consumed by the sum, so any flip there is
        caught before the program can halt cleanly."""
        machine = fresh_machine("authen-then-issue")
        machine.mem.flip_bits(addr, bytes([mask]))
        result = machine.run(5000)
        assert result.detected
        assert result.io_log == []

    @settings(max_examples=25, deadline=None)
    @given(addr=_TARGET_REGIONS, mask=st.integers(1, 255))
    def test_decrypt_only_can_be_silently_wrong(self, addr, mask):
        """The contrast: without verification, flips corrupt silently.
        (Not every flip changes the output -- but none is ever detected.)"""
        machine = fresh_machine("decrypt-only")
        machine.mem.flip_bits(addr, bytes([mask]))
        result = machine.run(5000)
        assert not result.detected
