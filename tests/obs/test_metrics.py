"""Metrics registry tests: labels, disabled no-op path, exporters."""

import json

import pytest

from repro.obs.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    HistogramMetric,
    JobMetrics,
    MetricsRegistry,
    write_metrics,
)


class TestFamilies:
    def test_counter_labels_create_children_on_first_use(self):
        reg = MetricsRegistry()
        jobs = reg.counter("jobs_total", "jobs", ("status",))
        jobs.labels("ok").inc()
        jobs.labels("ok").inc(2)
        jobs.labels("failed").inc()
        assert jobs.labels("ok").value == 3
        assert jobs.labels("failed").value == 1
        assert jobs.total() == 4

    def test_label_arity_enforced(self):
        reg = MetricsRegistry()
        jobs = reg.counter("jobs_total", "jobs", ("status",))
        with pytest.raises(ValueError):
            jobs.labels()
        with pytest.raises(ValueError):
            jobs.labels("ok", "extra")

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        cells = reg.counter("cells", "", ("index",))
        cells.labels(7).inc()
        assert cells.labels("7").value == 1

    def test_reregistering_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "jobs", ("status",))
        b = reg.counter("jobs_total", "jobs", ("status",))
        assert a is b

    def test_kind_and_label_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs", ("status",))
        with pytest.raises(ValueError):
            reg.gauge("jobs_total", "jobs", ("status",))
        with pytest.raises(ValueError):
            reg.counter("jobs_total", "jobs", ("benchmark",))

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        pending = reg.gauge("pending")
        pending.set(5)
        pending.dec()
        pending.inc(3)
        assert pending.value == 7

    def test_value_for_does_not_create_children(self):
        # Read-only consumers (the progress line) must not pollute
        # snapshots with empty series.
        reg = MetricsRegistry()
        jobs = reg.counter("jobs_total", "jobs", ("status",))
        assert jobs.value_for("failed") == 0
        assert jobs.samples() == []
        jobs.labels("failed").inc()
        assert jobs.value_for("failed") == 1


class TestHistogram:
    def test_quantisation_bounds_buckets_but_mean_is_exact(self):
        hist = HistogramMetric(resolution=1e-3)
        hist.observe(0.0101)
        hist.observe(0.0102)  # same 10ms bucket
        hist.observe(0.0204)
        assert hist.count == 3
        assert hist.mean() == pytest.approx((0.0101 + 0.0102 + 0.0204) / 3)
        assert hist.percentile(50) == pytest.approx(0.010)
        assert hist.max_value() == pytest.approx(0.020)

    def test_empty_distribution_is_none_not_zero(self):
        hist = HistogramMetric()
        assert hist.percentile(50) is None
        assert hist.max_value() is None
        assert hist.mean() == 0.0


class TestDisabledPath:
    def test_disabled_registry_hands_out_the_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("jobs_total") is NULL_METRIC
        assert reg.histogram("wall") is NULL_METRIC
        assert NULL_REGISTRY.gauge("pending") is NULL_METRIC

    def test_null_metric_absorbs_every_operation(self):
        m = NULL_METRIC
        assert m.labels("anything", "at", "all") is m
        m.inc()
        m.dec()
        m.set(9)
        m.observe(1.5)
        assert m.value == 0
        assert m.count == 0
        assert m.total() == 0
        assert m.percentile(50) is None
        assert m.max_value() is None

    def test_disabled_registry_snapshot_is_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("jobs_total").inc()
        snap = reg.snapshot()
        assert snap["enabled"] is False
        assert snap["families"] == {}

    def test_job_metrics_without_registry_is_all_noop(self):
        jm = JobMetrics(None)
        assert jm.jobs is NULL_METRIC
        assert jm.wall is NULL_METRIC
        jm.observe_completed(object(), 0.5)  # no accounting attr: fine
        assert jm.registry is NULL_REGISTRY


class TestJobMetrics:
    class FakeResult:
        def __init__(self, accounting):
            self.accounting = accounting

    def test_observe_completed_records_accounting(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        jm.observe_completed(self.FakeResult(
            {"wall_seconds": 0.2, "tracegen_seconds": 0.1,
             "cache_hit": False, "peak_rss_kb": 1000}), 0.2)
        jm.observe_completed(self.FakeResult(
            {"wall_seconds": 0.05, "tracegen_seconds": 0.0,
             "cache_hit": True, "peak_rss_kb": 1100}), 0.05)
        assert jm.jobs.labels("ok").value == 2
        assert jm.wall.count == 2
        assert jm.cache_hits.value == 1
        assert jm.cache_misses.value == 1
        assert jm.tracegen.count == 1
        # saved = hits x mean miss cost = 1 x 0.1
        assert jm.cache_saved.value == pytest.approx(0.1)
        assert jm.rss.count == 2
        assert jm.rss.max_value() == pytest.approx(1100)

    def test_shared_taxonomy_is_reentrant(self):
        # Two JobMetrics over one registry (sweep driver + executor)
        # must resolve to the same families, not clash.
        reg = MetricsRegistry()
        a, b = JobMetrics(reg), JobMetrics(reg)
        a.retries.inc()
        b.retries.inc()
        assert reg.get("repro_job_retries_total").value == 2


class TestExporters:
    def build(self):
        reg = MetricsRegistry()
        jobs = reg.counter("repro_jobs_total", "Jobs settled", ("status",))
        jobs.labels("ok").inc(3)
        wall = reg.histogram("repro_job_wall_seconds", "Wall time")
        wall.observe(0.25)
        reg.histogram("repro_retry_backoff_seconds", "never observed")
        reg.gauge("repro_jobs_pending").set(2)
        return reg

    def test_snapshot_shape(self):
        snap = self.build().snapshot()
        assert snap["kind"] == "metrics"
        assert snap["format_version"] == 1
        jobs = snap["families"]["repro_jobs_total"]
        assert jobs["type"] == "counter"
        assert jobs["labels"] == ["status"]
        assert jobs["samples"] == [
            {"labels": {"status": "ok"}, "value": 3}]
        wall = snap["families"]["repro_job_wall_seconds"]["samples"][0]
        assert wall["count"] == 1
        assert wall["p50"] == pytest.approx(0.25)
        # Registered-but-never-observed families still list (empty).
        assert snap["families"]["repro_retry_backoff_seconds"][
            "samples"] == []

    def test_prometheus_text(self):
        text = self.build().render_prometheus()
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{status="ok"} 3' in text
        assert '# TYPE repro_job_wall_seconds summary' in text
        assert 'repro_job_wall_seconds{quantile="0.5"} 0.25' in text
        assert 'repro_job_wall_seconds_count 1' in text
        assert 'repro_jobs_pending 2' in text
        # A family with no series exports only its HELP/TYPE header.
        assert '# TYPE repro_retry_backoff_seconds summary' in text
        assert 'repro_retry_backoff_seconds{quantile' not in text
        assert 'repro_retry_backoff_seconds_count' not in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "", ("path",)).labels('a"b\\c\nd').inc()
        text = reg.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_write_metrics_json_and_prometheus(self, tmp_path):
        reg = self.build()
        json_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        write_metrics(reg, json_path)
        write_metrics(reg, prom_path)
        snap = json.loads(json_path.read_text())
        assert snap["families"]["repro_jobs_total"]["samples"][0][
            "value"] == 3
        assert prom_path.read_text().startswith("# HELP")
