"""Tracer semantics: disabled fast path, lane ordering, policy gating."""

import time

import pytest

from repro.obs import events
from repro.obs.sinks import MemorySink
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.runner import run_benchmark


def record_run(policy, n=1500, benchmark="gzip"):
    sink = MemorySink()
    run_benchmark(benchmark, n, policy=policy, tracer=Tracer([sink]))
    return sink


class TestTracerBasics:
    def test_no_sinks_means_disabled(self):
        assert not Tracer().enabled

    def test_add_sink_enables(self):
        tracer = Tracer()
        tracer.add_sink(MemorySink())
        assert tracer.enabled

    def test_emit_reaches_all_sinks(self):
        a, b = MemorySink(), MemorySink()
        tracer = Tracer([a, b])
        tracer.emit(events.COMMIT, events.LANE_COMMIT, 7, pc=4)
        assert len(a) == len(b) == 1
        assert a.events[0].cycle == 7
        assert a.events[0].args == {"pc": 4}

    def test_pause_resume(self):
        sink = MemorySink()
        tracer = Tracer([sink])
        tracer.pause()
        tracer.emit(events.COMMIT, events.LANE_COMMIT, 1)
        assert len(sink) == 0
        tracer.resume()
        tracer.emit(events.COMMIT, events.LANE_COMMIT, 2)
        assert len(sink) == 1

    def test_null_tracer_rejects_sinks(self):
        assert not NULL_TRACER.enabled
        with pytest.raises(ValueError):
            NULL_TRACER.add_sink(MemorySink())
        NULL_TRACER.resume()
        assert not NULL_TRACER.enabled


class TestDisabledPath:
    def test_disabled_tracer_adds_zero_events(self):
        sink = MemorySink()
        tracer = Tracer([sink])
        tracer.pause()
        run_benchmark("gzip", 1000, tracer=tracer)
        assert len(sink) == 0

    def test_tracing_does_not_perturb_timing(self):
        # The whole point of a timestamp model: observation must not
        # change the observed cycle counts.
        plain = run_benchmark("gzip", 1500, policy="authen-then-commit")
        traced = run_benchmark("gzip", 1500, policy="authen-then-commit",
                               tracer=Tracer([MemorySink()]))
        assert plain.cycles == traced.cycles
        assert plain.ipc == traced.ipc

    def test_disabled_overhead_is_small(self):
        # Generous 2x bound: the disabled path is one hoisted boolean per
        # emission site, far below wall-clock noise on a shared runner.
        def best_of(tracer, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run_benchmark("gzip", 2000, tracer=tracer)
                best = min(best, time.perf_counter() - start)
            return best

        baseline = best_of(None)
        disabled = best_of(NULL_TRACER)
        assert disabled < 2.0 * baseline + 0.05


class TestEventStream:
    @pytest.fixture(scope="class")
    def commit_sink(self):
        return record_run("authen-then-commit")

    def test_ordered_lanes_are_monotone(self, commit_sink):
        for lane in events.ORDERED_LANES:
            cycles = [e.cycle for e in commit_sink.by_lane(lane)]
            assert cycles == sorted(cycles), "lane %s out of order" % lane

    def test_every_instruction_issues_and_commits(self, commit_sink):
        assert len(commit_sink.by_kind(events.ISSUE)) == 1500
        assert len(commit_sink.by_kind(events.COMMIT)) == 1500

    def test_verify_matches_decrypt_count(self, commit_sink):
        decrypts = commit_sink.by_kind(events.DECRYPT_DONE)
        verifies = commit_sink.by_kind(events.VERIFY_DONE)
        assert len(decrypts) == len(verifies) > 0

    def test_windows_have_positive_duration(self, commit_sink):
        for event in commit_sink.by_kind(events.VERIFY_WINDOW):
            assert event.dur > 0
            assert event.lane == events.LANE_GAP


class TestPolicyGating:
    def test_decrypt_only_never_verifies(self):
        sink = record_run("decrypt-only")
        assert sink.by_kind(events.DECRYPT_DONE)
        assert not sink.by_kind(events.VERIFY_DONE)

    def test_authen_then_issue_gates_issue_on_verification(self):
        gated = record_run("authen-then-issue")
        free = record_run("decrypt-only")
        first_verify = gated.by_kind(events.VERIFY_DONE)[0].cycle
        first_gated_issue = gated.by_kind(events.ISSUE)[0].cycle
        first_free_issue = free.by_kind(events.ISSUE)[0].cycle
        # Under authen-then-issue nothing issues before its I-line
        # verifies; decrypt-only starts as soon as the data decrypts.
        assert first_gated_issue >= first_verify
        assert first_free_issue < first_gated_issue
