"""Manifest and CSV export tests."""

import csv
import json

import pytest

from repro.config import SimConfig
from repro.obs.export import (
    build_run_manifest,
    build_run_set_manifest,
    build_sweep_manifest,
    config_to_dict,
    write_json,
    write_sweep_csv,
)
from repro.obs.profile import PhaseProfiler
from repro.sim.metrics import run_with_metrics
from repro.sim.sweep import PolicySweep
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace


@pytest.fixture(scope="module")
def run_and_metrics():
    trace = generate_trace(get_profile("gzip"), 1200, seed=7)
    return run_with_metrics(trace, SimConfig(), "authen-then-commit")


@pytest.fixture(scope="module")
def sweep():
    return PolicySweep(["gzip"], ["authen-then-commit"],
                       num_instructions=1200, warmup=600).run()


class TestRunManifest:
    def test_contains_the_advertised_sections(self, run_and_metrics):
        result, metrics = run_and_metrics
        profiler = PhaseProfiler()
        profiler.add("measure", 0.5)
        manifest = build_run_manifest(result, metrics, config=SimConfig(),
                                      seed=7, profiler=profiler)
        assert manifest["kind"] == "run"
        assert manifest["policy"] == "authen-then-commit"
        assert manifest["seed"] == 7
        assert manifest["phases"] == {"measure": 0.5}
        assert manifest["config"]["core"]["ruu_entries"] == 128
        assert manifest["stats"]["auth_requests"] > 0
        assert manifest["metrics"]["ipc"] == result.ipc

    def test_json_serialisable(self, run_and_metrics, tmp_path):
        result, metrics = run_and_metrics
        path = tmp_path / "run.json"
        write_json(build_run_manifest(result, metrics, config=SimConfig()),
                   path)
        loaded = json.loads(path.read_text())
        assert loaded["format_version"] == 1
        assert loaded["cycles"] == result.cycles

    def test_run_set_manifest(self, run_and_metrics):
        result, metrics = run_and_metrics
        manifest = build_run_set_manifest([(result, metrics),
                                           (result, None)],
                                          config=SimConfig(), seed=7)
        assert manifest["kind"] == "run-set"
        assert len(manifest["runs"]) == 2
        assert manifest["runs"][1]["metrics"] is None


class TestSweepExport:
    def test_sweep_manifest(self, sweep):
        manifest = build_sweep_manifest(sweep)
        assert manifest["kind"] == "sweep"
        # requested policy + implicit decrypt-only baseline
        assert len(manifest["runs"]) == 2
        for run in manifest["runs"]:
            assert run["stats"], "stats snapshot missing"

    def test_sweep_manifest_via_method(self, sweep, tmp_path):
        path = sweep.write_manifest(tmp_path / "sweep.json")
        assert json.loads(open(path).read())["benchmarks"] == ["gzip"]

    def test_csv_rows(self, sweep, tmp_path):
        path = sweep.write_csv(tmp_path / "sweep.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        by_policy = {row["policy"]: row for row in rows}
        assert float(by_policy["decrypt-only"]["ipc_normalized"]) == 1.0
        assert 0 < float(by_policy["authen-then-commit"]["ipc_normalized"]) \
            <= 1.001
        assert "miss_l2" in rows[0]


class TestConfigDict:
    def test_nested_dataclasses_flatten(self):
        flat = config_to_dict(SimConfig())
        assert flat["secure"]["decrypt_latency"] == 80
        json.dumps(flat)  # must be plain data

    def test_none_passthrough(self):
        assert config_to_dict(None) is None


class TestFiguresManifest:
    def test_totals_and_shape(self):
        from repro.obs.export import build_figures_manifest

        entries = [
            {"name": "fig8", "artifact": "fig8.txt",
             "jobs": [{"job_id": "a", "status": "ok"},
                      {"job_id": "b", "status": "failed"}],
             "failures": [{"job_id": "b", "status": "failed"}]},
            {"name": "table1", "artifact": "table1.txt",
             "jobs": [], "failures": []},
        ]
        manifest = build_figures_manifest(
            entries, backend={"backend": "process", "jobs": 2},
            num_instructions=600, warmup=300)
        assert manifest["kind"] == "figures"
        assert manifest["artifacts"] == ["fig8", "table1"]
        assert manifest["total_jobs"] == 2
        assert manifest["total_failures"] == 1
        assert manifest["backend"]["jobs"] == 2
