"""Phase profiler tests (deterministic via an injected clock)."""

from repro.obs.profile import PhaseProfiler


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPhaseProfiler:
    def test_phase_context_manager_times_block(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("tracegen"):
            clock.now += 1.5
        assert profiler.seconds("tracegen") == 1.5

    def test_reentering_a_phase_accumulates(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        for _ in range(3):
            with profiler.phase("measure"):
                clock.now += 0.25
        assert profiler.seconds("measure") == 0.75
        assert profiler.total == 0.75

    def test_add_records_directly(self):
        profiler = PhaseProfiler()
        profiler.add("warmup", 0.125)
        assert profiler.as_dict() == {"warmup": 0.125}

    def test_as_dict_preserves_entry_order(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        for name in ("tracegen", "warmup", "measure"):
            with profiler.phase(name):
                clock.now += 1.0
        assert list(profiler.as_dict()) == ["tracegen", "warmup", "measure"]

    def test_exception_still_credits_the_phase(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        try:
            with profiler.phase("broken"):
                clock.now += 2.0
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert profiler.seconds("broken") == 2.0

    def test_render(self):
        profiler = PhaseProfiler()
        profiler.add("measure", 1.0)
        text = profiler.render()
        assert "measure" in text and "total" in text
        assert PhaseProfiler().render() == "phases: (none recorded)"


class TestCoreIntegration:
    def test_warmup_measure_split(self):
        from repro.obs.profile import PhaseProfiler
        from repro.sim.runner import run_benchmark

        profiler = PhaseProfiler()
        run_benchmark("gzip", 600, warmup=400, profiler=profiler)
        phases = profiler.as_dict()
        assert phases["tracegen"] >= 0
        assert phases["warmup"] > 0
        assert phases["measure"] > 0
