"""Text timeline rendering tests."""

from repro.obs import events
from repro.obs.events import Event
from repro.obs.sinks import MemorySink
from repro.obs.timeline import (
    gap_histogram,
    render_gap_timeline,
    render_lane_census,
)
from repro.obs.tracer import Tracer
from repro.sim.runner import run_benchmark


def window(cycle, dur, addr=0x40):
    return Event(cycle, events.VERIFY_WINDOW, events.LANE_GAP, dur,
                 {"addr": addr})


class TestGapTimeline:
    def test_empty_stream_explains_itself(self):
        assert "no decrypt-to-verify windows" in render_gap_timeline([])

    def test_rows_and_summary(self):
        text = render_gap_timeline([window(100, 73), window(200, 10)])
        assert "first 2 of 2" in text
        assert "0x40" in text
        assert "p95=73" in text

    def test_limit(self):
        text = render_gap_timeline([window(i * 10, 5) for i in range(50)],
                                   limit=4)
        assert "first 4 of 50" in text

    def test_gap_histogram(self):
        hist = gap_histogram([window(0, 73), window(1, 73), window(2, 9)])
        assert hist.total == 3
        assert hist.percentile(50) == 73
        assert hist.max_key() == 73


class TestLaneCensus:
    def test_empty(self):
        assert render_lane_census([]) == "no events recorded"

    def test_counts_by_lane_and_kind(self):
        text = render_lane_census([window(0, 73),
                                   Event(5, events.COMMIT,
                                         events.LANE_COMMIT)])
        assert "gap" in text and "VERIFY_WINDOW" in text
        assert "commit" in text


class TestEndToEnd:
    def test_recorded_run_renders(self):
        sink = MemorySink()
        run_benchmark("gzip", 800, policy="authen-then-commit",
                      tracer=Tracer([sink]))
        text = render_gap_timeline(sink.events)
        assert "decrypt-to-verify windows" in text
        assert "mean=" in text
