"""Progress renderer tests: TTY detection, status-line content, ETA."""

import io

from repro.obs.metrics import JobMetrics, MetricsRegistry
from repro.obs.progress import (
    ProgressLine,
    ProgressLog,
    _format_seconds,
    make_progress,
)


class FakeStream(io.StringIO):
    def __init__(self, tty):
        super().__init__()
        self._tty = tty

    def isatty(self):
        return self._tty


class FakeJob:
    benchmark = "gzip"
    policy = "authen-then-commit"


class FakeResult:
    cycles = 1234


class FailedResult:
    """What the executor's fail() path hands renderers (no .cycles)."""
    status = "failed"
    attempts = 1
    error = "Boom('injected')"


class TestFactory:
    def test_tty_gets_the_rewriting_line(self):
        assert isinstance(make_progress(FakeStream(True)), ProgressLine)

    def test_pipe_gets_line_per_job(self):
        assert isinstance(make_progress(FakeStream(False)), ProgressLog)

    def test_stream_without_isatty_gets_line_per_job(self):
        assert isinstance(make_progress(object()), ProgressLog)


class TestProgressLog:
    def test_one_line_per_completion_and_noop_close(self):
        stream = FakeStream(False)
        progress = ProgressLog(stream)
        progress(FakeJob(), FakeResult(), 1, 4)
        progress.close()
        assert stream.getvalue() == \
            "[1/4] gzip/authen-then-commit: 1234 cycles\n"


class TestFailureRendering:
    def test_log_renders_failed_outcome(self):
        stream = FakeStream(False)
        ProgressLog(stream)(FakeJob(), FailedResult(), 3, 4)
        assert stream.getvalue() == \
            "[3/4] gzip/authen-then-commit: FAILED (Boom('injected'))\n"

    def test_log_renders_bare_status_without_error(self):
        stream = FakeStream(False)
        result = FailedResult()
        result.error = None
        ProgressLog(stream)(FakeJob(), result, 1, 4)
        assert stream.getvalue() == \
            "[1/4] gzip/authen-then-commit: FAILED\n"

    def test_line_suffixes_failed_outcome(self):
        stream = FakeStream(True)
        progress = ProgressLine(stream,
                                clock=iter([0.0, 1.0]).__next__)
        progress(FakeJob(), FailedResult(), 1, 4)
        assert "gzip/authen-then-commit: FAILED (Boom('injected'))" \
            in stream.getvalue()


class TestProgressLine:
    def test_segments_without_metrics(self):
        stream = FakeStream(True)
        clock = iter([0.0, 10.0]).__next__
        progress = ProgressLine(stream, clock=clock)
        progress(FakeJob(), FakeResult(), 2, 4)
        line = stream.getvalue()
        assert line.startswith("\r[2/4]  50%")
        # elapsed-rate fallback: 10s for 2 jobs -> 10s for the rest
        assert "eta 10.0s" in line
        assert "| gzip/authen-then-commit" in line

    def test_metrics_feed_retries_failures_and_cache(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        jm.retries.inc(2)
        jm.jobs.labels("failed").inc()
        jm.cache_hits.inc(3)
        jm.cache_misses.inc()
        stream = FakeStream(True)
        clock = iter([0.0, 8.0]).__next__
        progress = ProgressLine(stream, metrics=reg, clock=clock)
        progress(FakeJob(), FakeResult(), 3, 4)
        line = stream.getvalue()
        assert "retried 2" in line
        assert "failed 1" in line
        assert "cache 75%" in line

    def test_eta_uses_wall_histogram_with_concurrency_divisor(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        # 4 jobs x 2s of wall banked in 4s elapsed: concurrency 2, so
        # the 4 remaining jobs should take ~ 4 * 2 / 2 = 4s.
        for _ in range(4):
            jm.wall.observe(2.0)
        stream = FakeStream(True)
        clock = iter([0.0, 4.0]).__next__
        progress = ProgressLine(stream, metrics=reg, clock=clock)
        progress(FakeJob(), FakeResult(), 4, 8)
        assert "eta 4.0s" in stream.getvalue()

    def test_eta_recent_window_ages_out_a_degraded_pool(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        clock = iter([0.0, 1.0, 1.0, 1.0, 1.0,
                      2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).__next__
        progress = ProgressLine(FakeStream(True), metrics=reg,
                                clock=clock)
        done = 0
        # 4-wide burst: 16s of wall banked by t=1 ...
        for _ in range(4):
            jm.wall.observe(4.0)
            done += 1
            progress(FakeJob(), FakeResult(), done, 16)
        # ... then the pool degrades to serial: 1s of wall per elapsed
        # second.  The ETA_WINDOW=8 recent samples are all serial.
        for _ in range(8):
            jm.wall.observe(1.0)
            done += 1
            progress(FakeJob(), FakeResult(), done, 16)
        last = progress._stream.getvalue().split("\r")[-1]
        # window concurrency 1.0: 4 remaining x mean 2.0s wall -> 8s.
        # The whole-run ratio (24s wall / 9s elapsed ~ 2.7-wide) would
        # have claimed ~3s -- the stale estimate this fix ages out.
        assert "eta 8.0s" in last

    def test_eta_concurrency_clamped_to_pending(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        # An 8-wide burst banks 8s of wall in 1s of elapsed time, but
        # only one job remains: it cannot run 8-wide, so the divisor
        # clamps to the pending count and the ETA is one mean wall.
        for _ in range(8):
            jm.wall.observe(1.0)
        progress = ProgressLine(FakeStream(True), metrics=reg,
                                clock=iter([0.0, 1.0]).__next__)
        progress(FakeJob(), FakeResult(), 7, 8)
        assert "eta 1.0s" in progress._stream.getvalue()

    def test_reading_the_line_never_pollutes_the_snapshot(self):
        # The status line reads failure counts via value_for; it must
        # not create a zero-valued {status="failed"} series.
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        jm.jobs.labels("ok").inc()
        progress = ProgressLine(FakeStream(True), metrics=reg,
                                clock=iter([0.0, 1.0]).__next__)
        progress(FakeJob(), FakeResult(), 1, 2)
        samples = reg.snapshot()["families"]["repro_jobs_total"]["samples"]
        assert [s["labels"] for s in samples] == [{"status": "ok"}]

    def test_rewrite_pads_over_the_previous_line_and_close_finishes(self):
        stream = FakeStream(True)
        clock = iter([0.0, 1.0, 2.0]).__next__
        progress = ProgressLine(stream, clock=clock)
        progress(FakeJob(), FakeResult(), 1, 2)

        class ShortJob:
            benchmark = "mcf"
            policy = "x"

        progress(ShortJob(), FakeResult(), 2, 2)
        progress.close()
        progress.close()  # idempotent
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")
        assert not text.endswith("\n\n")

    def test_format_seconds(self):
        assert _format_seconds(12.34) == "12.3s"
        assert _format_seconds(90) == "1m30s"
        assert _format_seconds(3700) == "1h01m"
