"""Progress renderer tests: TTY detection, status-line content, ETA."""

import io

from repro.obs.metrics import JobMetrics, MetricsRegistry
from repro.obs.progress import (
    ProgressLine,
    ProgressLog,
    _format_seconds,
    make_progress,
)


class FakeStream(io.StringIO):
    def __init__(self, tty):
        super().__init__()
        self._tty = tty

    def isatty(self):
        return self._tty


class FakeJob:
    benchmark = "gzip"
    policy = "authen-then-commit"


class FakeResult:
    cycles = 1234


class TestFactory:
    def test_tty_gets_the_rewriting_line(self):
        assert isinstance(make_progress(FakeStream(True)), ProgressLine)

    def test_pipe_gets_line_per_job(self):
        assert isinstance(make_progress(FakeStream(False)), ProgressLog)

    def test_stream_without_isatty_gets_line_per_job(self):
        assert isinstance(make_progress(object()), ProgressLog)


class TestProgressLog:
    def test_one_line_per_completion_and_noop_close(self):
        stream = FakeStream(False)
        progress = ProgressLog(stream)
        progress(FakeJob(), FakeResult(), 1, 4)
        progress.close()
        assert stream.getvalue() == \
            "[1/4] gzip/authen-then-commit: 1234 cycles\n"


class TestProgressLine:
    def test_segments_without_metrics(self):
        stream = FakeStream(True)
        clock = iter([0.0, 10.0]).__next__
        progress = ProgressLine(stream, clock=clock)
        progress(FakeJob(), FakeResult(), 2, 4)
        line = stream.getvalue()
        assert line.startswith("\r[2/4]  50%")
        # elapsed-rate fallback: 10s for 2 jobs -> 10s for the rest
        assert "eta 10.0s" in line
        assert "| gzip/authen-then-commit" in line

    def test_metrics_feed_retries_failures_and_cache(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        jm.retries.inc(2)
        jm.jobs.labels("failed").inc()
        jm.cache_hits.inc(3)
        jm.cache_misses.inc()
        stream = FakeStream(True)
        clock = iter([0.0, 8.0]).__next__
        progress = ProgressLine(stream, metrics=reg, clock=clock)
        progress(FakeJob(), FakeResult(), 3, 4)
        line = stream.getvalue()
        assert "retried 2" in line
        assert "failed 1" in line
        assert "cache 75%" in line

    def test_eta_uses_wall_histogram_with_concurrency_divisor(self):
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        # 4 jobs x 2s of wall banked in 4s elapsed: concurrency 2, so
        # the 4 remaining jobs should take ~ 4 * 2 / 2 = 4s.
        for _ in range(4):
            jm.wall.observe(2.0)
        stream = FakeStream(True)
        clock = iter([0.0, 4.0]).__next__
        progress = ProgressLine(stream, metrics=reg, clock=clock)
        progress(FakeJob(), FakeResult(), 4, 8)
        assert "eta 4.0s" in stream.getvalue()

    def test_reading_the_line_never_pollutes_the_snapshot(self):
        # The status line reads failure counts via value_for; it must
        # not create a zero-valued {status="failed"} series.
        reg = MetricsRegistry()
        jm = JobMetrics(reg)
        jm.jobs.labels("ok").inc()
        progress = ProgressLine(FakeStream(True), metrics=reg,
                                clock=iter([0.0, 1.0]).__next__)
        progress(FakeJob(), FakeResult(), 1, 2)
        samples = reg.snapshot()["families"]["repro_jobs_total"]["samples"]
        assert [s["labels"] for s in samples] == [{"status": "ok"}]

    def test_rewrite_pads_over_the_previous_line_and_close_finishes(self):
        stream = FakeStream(True)
        clock = iter([0.0, 1.0, 2.0]).__next__
        progress = ProgressLine(stream, clock=clock)
        progress(FakeJob(), FakeResult(), 1, 2)

        class ShortJob:
            benchmark = "mcf"
            policy = "x"

        progress(ShortJob(), FakeResult(), 2, 2)
        progress.close()
        progress.close()  # idempotent
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")
        assert not text.endswith("\n\n")

    def test_format_seconds(self):
        assert _format_seconds(12.34) == "12.3s"
        assert _format_seconds(90) == "1m30s"
        assert _format_seconds(3700) == "1h01m"
