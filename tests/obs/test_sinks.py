"""Sink formats: ring buffer, JSONL and Chrome trace-event round-trips."""

import json

from repro.obs import events
from repro.obs.events import Event
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink
from repro.obs.tracer import Tracer
from repro.sim.runner import run_benchmark


def some_events(count=5):
    return [Event(10 * i, events.COMMIT, events.LANE_COMMIT, 0, {"pc": i})
            for i in range(count)]


class TestMemorySink:
    def test_unbounded_by_default(self):
        sink = MemorySink()
        for event in some_events(100):
            sink.accept(event)
        assert len(sink) == 100 and sink.dropped == 0

    def test_ring_buffer_keeps_newest(self):
        sink = MemorySink(capacity=3)
        for event in some_events(10):
            sink.accept(event)
        assert len(sink) == 3
        assert sink.dropped == 7
        assert [e.cycle for e in sink.events] == [70, 80, 90]

    def test_filters(self):
        sink = MemorySink()
        sink.accept(Event(1, events.ISSUE, events.LANE_ISSUE))
        sink.accept(Event(2, events.COMMIT, events.LANE_COMMIT))
        assert len(sink.by_lane(events.LANE_ISSUE)) == 1
        assert len(sink.by_kind(events.COMMIT)) == 1

    def test_clear(self):
        sink = MemorySink(capacity=1)
        for event in some_events(2):
            sink.accept(event)
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0


class TestJsonlSink:
    def test_round_trips_through_json_loads(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.accept(Event(5, events.VERIFY_DONE, events.LANE_VERIFY, 0,
                          {"addr": 64, "gap": 73}))
        sink.accept(Event(9, events.BUS_GRANT, events.LANE_BUS, 40,
                          {"bytes": 64}))
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"cycle": 5, "kind": "VERIFY_DONE",
                            "lane": "verify", "addr": 64, "gap": 73}
        assert lines[1]["dur"] == 40

    def test_full_run_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(path)])
        run_benchmark("gzip", 800, policy="authen-then-commit",
                      tracer=tracer)
        tracer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) > 800
        assert {"cycle", "kind", "lane"} <= set(records[0])


class TestChromeTraceSink:
    def test_trace_format_fields(self, tmp_path):
        path = tmp_path / "t.json"
        tracer = Tracer([ChromeTraceSink(path, process_name="gzip")])
        run_benchmark("gzip", 800, policy="authen-then-commit",
                      tracer=tracer)
        tracer.close()
        payload = json.loads(path.read_text())
        trace_events = payload["traceEvents"]
        assert trace_events
        for record in trace_events:
            assert "ph" in record and "pid" in record
            if record["ph"] != "M":
                assert "ts" in record and "tid" in record
        # lanes are named threads, intervals are complete events
        names = [r for r in trace_events if r["ph"] == "M"]
        assert any(r["args"]["name"] == "verify" for r in names)
        assert any(r["ph"] == "X" and r["dur"] > 0 for r in trace_events)

    def test_begin_process_separates_runs(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path)
        assert sink.begin_process("first") == 0    # renames empty pid 0
        sink.accept(Event(1, events.COMMIT, events.LANE_COMMIT))
        assert sink.begin_process("second") == 1
        sink.accept(Event(2, events.COMMIT, events.LANE_COMMIT))
        sink.close()
        payload = json.loads(path.read_text())
        pids = {r["pid"] for r in payload["traceEvents"]
                if r["ph"] != "M"}
        assert pids == {0, 1}
        process_names = {r["args"]["name"]
                         for r in payload["traceEvents"]
                         if r.get("name") == "process_name"}
        assert {"first", "second"} <= process_names
