"""Run health report tests: built over a real (seeded) faulty sweep."""

import json

import pytest

from repro.exec import RETRY_THEN_SKIP, FailurePolicy, set_attempt_hook
from repro.obs.export import build_sweep_manifest, write_json
from repro.obs.metrics import MetricsRegistry, write_metrics
from repro.obs.report import build_report, render_report, sniff_kind
from repro.sim.checkpoint import JobJournal
from repro.sim.sweep import PolicySweep


@pytest.fixture
def hook():
    installed = []

    def install(fn):
        installed.append(set_attempt_hook(fn))
        return fn

    yield install
    while installed:
        set_attempt_hook(installed.pop())


def faulty_sweep(tmp_path, hook):
    """A 2x2 sweep with one retried job and one terminally skipped job.

    Returns (sweep, manifest_path, metrics_path, journal_path).
    """
    sweep = PolicySweep(["gzip", "mcf"], ["authen-then-commit"],
                        num_instructions=600, warmup=300)
    jobs = sweep.jobs()
    retried = next(j for j in jobs
                   if (j.benchmark, j.policy) ==
                   ("gzip", "authen-then-commit"))
    doomed = next(j for j in jobs
                  if (j.benchmark, j.policy) ==
                  ("mcf", "authen-then-commit"))

    def inject(job, attempt):
        if job.job_id == retried.job_id and attempt == 1:
            raise RuntimeError("transient hiccup")
        if job.job_id == doomed.job_id:
            raise RuntimeError("permanently broken cell")

    hook(inject)
    metrics = MetricsRegistry()
    journal_path = tmp_path / "sweep.journal"
    sweep.run(journal=JobJournal(journal_path),
              failure_policy=FailurePolicy(mode=RETRY_THEN_SKIP,
                                           max_attempts=2,
                                           backoff_base=0.0, jitter=0.0),
              metrics=metrics)
    manifest_path = tmp_path / "sweep.json"
    metrics_path = tmp_path / "metrics.json"
    write_json(build_sweep_manifest(sweep), manifest_path)
    write_metrics(metrics, metrics_path)
    return sweep, manifest_path, metrics_path, journal_path


class TestSniffing:
    def test_kinds(self):
        assert sniff_kind({"kind": "sweep"}) == "sweep"
        assert sniff_kind({"kind": "metrics"}) == "metrics"
        assert sniff_kind({"stats_digest": "x", "faults": []}) == "chaos"
        assert sniff_kind({"families": {}}) == "metrics"
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            sniff_kind({"mystery": True})


class TestBuildReport:
    def test_faulty_sweep_report(self, tmp_path, hook):
        sweep, manifest, metrics, journal = faulty_sweep(tmp_path, hook)
        report = build_report([manifest, metrics], journal=journal)

        # Both injected jobs count as retried: the healed one and the
        # doomed one (it got its second attempt before giving up).
        assert report["jobs"] == {"total": 4, "ok": 3, "resumed": 0,
                                  "failed": 1, "retried": 2}
        failed = [c for c in report["cells"] if c["status"] == "failed"]
        assert len(failed) == 1
        assert "permanently broken cell" in failed[0]["error"]
        retried = [c for c in report["cells"]
                   if (c.get("attempts") or 1) > 1]
        assert ("gzip", "authen-then-commit") in \
            [(c["benchmark"], c["policy"]) for c in retried]
        assert len(retried) == 2

        # Only completed jobs are journaled, so 3 costed entries.
        assert len(report["slowest"]) == 3
        assert all(e["wall_seconds"] > 0 for e in report["slowest"])
        assert report["wall"]["count"] == 3
        assert report["wall"]["p50"] is not None
        assert report["cache"]["hits"] + report["cache"]["misses"] == 3
        # The metrics snapshot contributes family headlines: one retry
        # event per injected job (the healed and the doomed one).
        assert report["metrics_families"][
            "repro_job_retries_total"]["total"] == 2

    def test_snapshot_job_count_matches_manifest(self, tmp_path, hook):
        # Acceptance: repro_jobs_total in the snapshot equals the
        # manifest's settled-job count (runs + terminal failures).
        _, manifest_path, metrics_path, _ = faulty_sweep(tmp_path, hook)
        manifest = json.loads(manifest_path.read_text())
        snapshot = json.loads(metrics_path.read_text())
        jobs_total = sum(
            s["value"] for s in
            snapshot["families"]["repro_jobs_total"]["samples"])
        assert jobs_total == \
            len(manifest["runs"]) + len(manifest["failures"])

    def test_render_report_text(self, tmp_path, hook):
        _, manifest, metrics, journal = faulty_sweep(tmp_path, hook)
        text = render_report(build_report([manifest, metrics],
                                          journal=journal))
        assert "jobs: 4 total | 3 ok | 0 resumed | 1 failed | 2 retried" \
            in text
        assert "health by benchmark x policy:" in text
        assert "permanently broken cell" in text
        assert "slowest 3 job(s)" in text
        assert "wall time per job: n=3" in text
        assert "degradations: none" in text
        assert "metrics snapshot:" in text

    def test_accounting_survives_journal_resume(self, tmp_path):
        sweep = PolicySweep(["gzip"], ["authen-then-commit"],
                            num_instructions=600, warmup=300)
        sweep.run(journal=JobJournal(tmp_path / "j.journal"))
        resumed = PolicySweep(["gzip"], ["authen-then-commit"],
                              num_instructions=600, warmup=300)
        metrics = MetricsRegistry()
        resumed.run(journal=JobJournal(tmp_path / "j.journal"),
                    metrics=metrics)
        for result in resumed.results.values():
            accounting = result.accounting
            assert accounting["wall_seconds"] > 0
            assert accounting["cache_hit"] in (True, False)
        # Resumed jobs land in the jobs counter under their own status.
        snapshot = metrics.snapshot()
        samples = snapshot["families"]["repro_jobs_total"]["samples"]
        assert {"labels": {"status": "resumed"}, "value": 2} in samples

    def test_empty_distributions_render_dashes(self, tmp_path):
        # A v1-era journal record carries no accounting; the report
        # must say -- rather than invent zeros.
        sweep = PolicySweep(["gzip"], ["authen-then-commit"],
                            num_instructions=600, warmup=300)
        sweep.run()
        journal = JobJournal(tmp_path / "old.journal")
        for job in sweep.jobs():
            result = sweep.results[(job.benchmark, job.policy)]
            result.accounting = None
            journal.record(job, result)
        report = build_report([], journal=tmp_path / "old.journal")
        assert report["slowest"] == []
        assert report["wall"]["count"] == 0
        assert report["wall"]["p50"] is None
        text = render_report(report)
        assert "wall time per job: n=0 mean=-- p50=-- p95=-- max=--" \
            in text

    def test_missing_journal_is_an_error(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="journal not found"):
            build_report([], journal=tmp_path / "nope.journal")


class TestReportCli:
    def test_json_output(self, capsys, tmp_path, hook):
        from repro.cli import main

        _, manifest, metrics, journal = faulty_sweep(tmp_path, hook)
        code = main(["report", str(manifest), str(metrics),
                     "--journal", str(journal), "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "report"
        assert report["jobs"]["failed"] == 1
        assert report["jobs"]["retried"] == 2

    def test_text_output(self, capsys, tmp_path, hook):
        from repro.cli import main

        _, manifest, _, _ = faulty_sweep(tmp_path, hook)
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "run health report" in out
        assert "1 failed" in out

    def test_no_inputs_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 2
        assert "nothing to report on" in capsys.readouterr().err

    def test_unreadable_artifact_is_an_error(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_chaos_report_feeds_the_health_table(self, capsys, tmp_path):
        # Acceptance: a chaos run (worker kill + retries) surfaces its
        # retries and degradations in the report.
        from repro.cli import main
        from repro.exec.chaos import FAULT_WORKER_KILL, run_chaos
        from repro.obs.export import write_json

        chaos = run_chaos(benchmarks=["gzip"],
                          policies=["decrypt-only",
                                    "authen-then-commit"],
                          num_instructions=600, warmup=300, seed=0,
                          faults=(FAULT_WORKER_KILL,), workers=2,
                          workdir=tmp_path)
        chaos_json = tmp_path / "chaos.json"
        write_json(chaos.as_dict(), chaos_json)
        journal = str(tmp_path / "chaos.journal")
        assert main(["report", str(chaos_json),
                     "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "health by benchmark x policy:" in out
        assert "worker pool rebuilt" in out
        assert "chaos: injected worker-kill" in out
        # Journal-supplied names: rows show benchmark/policy, not ids.
        assert "gzip" in out

        assert main(["report", str(chaos_json), "--journal", journal,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"]["retried"] >= 1  # the killed job re-ran
        assert any("worker-kill" in d for d in report["degradations"])


class TestStoreReporting:
    def test_metrics_snapshot_fills_cache_evictions(self, tmp_path, hook):
        _, manifest, metrics, journal = faulty_sweep(tmp_path, hook)
        # The journal cannot know evictions (they are process-wide);
        # the metrics snapshot fills them in instead of the old
        # hardcoded None.
        with_metrics = build_report([manifest, metrics], journal=journal)
        assert with_metrics["cache"]["evictions"] == 0
        journal_only = build_report([manifest], journal=journal)
        assert journal_only["cache"]["evictions"] is None

    def test_store_section_from_metrics_and_journal(self, tmp_path):
        from repro.exec import (ArtifactStore, SerialExecutor, TraceCache,
                                build_jobs, set_active_store)

        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store", metrics=registry)
        jobs = build_jobs(["gzip"],
                          ["decrypt-only", "authen-then-commit"],
                          num_instructions=600, warmup=300)
        journal_path = tmp_path / "warm.journal"
        previous = set_active_store(store)
        try:
            SerialExecutor(cache=TraceCache()).run(jobs)   # cold
            SerialExecutor(cache=TraceCache()).run(        # warm
                jobs, journal=JobJournal(journal_path),
                metrics=registry)
        finally:
            set_active_store(previous)
        metrics_path = tmp_path / "metrics.json"
        write_metrics(registry, metrics_path)

        report = build_report([metrics_path], journal=journal_path)
        assert report["store"]["result_short_circuits"] == len(jobs)
        assert report["store"]["hits"] >= len(jobs)
        assert report["store"]["quarantined"] == 0
        # Store-served jobs belong in neither cache column.
        assert report["cache"] is None

        text = render_report(report)
        assert "artifact store:" in text
        assert "%d job(s) served without simulation" % len(jobs) in text
        assert "store" in text.lower()
