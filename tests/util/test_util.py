"""Utility-layer tests: bitops, RNG streams, statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitops import (
    bit,
    bits_of,
    bytes_to_words_be,
    mask,
    rotl32,
    rotr32,
    set_bits,
    sign_extend,
    words_to_bytes_be,
    xor_bytes,
)
from repro.util.rng import DeterministicRng
from repro.util.statistics import Counter, Histogram, StatGroup


class TestBitops:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(12) == 0xFFF
        with pytest.raises(ValueError):
            mask(-1)

    def test_bit_and_bits_of(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bits_of(0xDEADBEEF, 8, 8) == 0xBE

    def test_set_bits(self):
        assert set_bits(0, 4, 4, 0xF) == 0xF0
        assert set_bits(0xFF, 0, 4, 0) == 0xF0

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(0, 2**32 - 1), amount=st.integers(0, 64))
    def test_rotl_rotr_inverse(self, value, amount):
        assert rotr32(rotl32(value, amount), amount) == value

    def test_rotl_known(self):
        assert rotl32(0x80000000, 1) == 1
        assert rotr32(1, 1) == 0x80000000

    def test_sign_extend(self):
        assert sign_extend(0xFFFF, 16) == -1
        assert sign_extend(0x7FFF, 16) == 0x7FFF
        assert sign_extend(0x8000, 16) == -0x8000

    def test_xor_bytes(self):
        assert xor_bytes(b"\xff\x00", b"\x0f\x0f") == b"\xf0\x0f"
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")

    @settings(max_examples=40, deadline=None)
    @given(words=st.lists(st.integers(0, 2**32 - 1), max_size=16))
    def test_words_bytes_roundtrip(self, words):
        assert bytes_to_words_be(words_to_bytes_be(words)) == words

    def test_bytes_to_words_rejects_partial(self):
        with pytest.raises(ValueError):
            bytes_to_words_be(b"\x00\x01\x02")


class TestRng:
    def test_streams_are_reproducible(self):
        a = DeterministicRng(1).stream("x").random()
        b = DeterministicRng(1).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        rng = DeterministicRng(1)
        first = rng.stream("a").random()
        # Drawing from stream b must not perturb stream a's sequence.
        rng2 = DeterministicRng(1)
        rng2.stream("b").random()
        assert rng2.stream("a").random() == first

    def test_stream_identity_cached(self):
        rng = DeterministicRng(1)
        assert rng.stream("s") is rng.stream("s")

    def test_different_seeds_differ(self):
        assert (DeterministicRng(1).stream("x").random()
                != DeterministicRng(2).stream("x").random())

    def test_derive(self):
        child = DeterministicRng(1).derive("sub")
        again = DeterministicRng(1).derive("sub")
        assert child.seed == again.seed != 1


class TestStats:
    def test_counter(self):
        c = Counter("n")
        c.add()
        c.add(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_histogram(self):
        h = Histogram("lat")
        h.add(10)
        h.add(10)
        h.add(30)
        assert h.total == 3
        assert h.mean() == pytest.approx(50 / 3)

    def test_empty_histogram_mean(self):
        assert Histogram("x").mean() == 0.0

    def test_percentile(self):
        h = Histogram("gap")
        for key, weight in ((10, 50), (20, 45), (90, 5)):
            h.add(key, weight)
        assert h.percentile(50) == 10
        assert h.percentile(95) == 20
        assert h.percentile(96) == 90
        assert h.percentile(100) == 90
        assert h.percentile(0) == 10

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)
        with pytest.raises(ValueError):
            Histogram("x").percentile(-1)

    def test_percentile_empty_is_none(self):
        # None, not 0: "no observations" must be distinguishable from
        # "the percentile is bucket 0" (renderers show `--`).
        assert Histogram("x").percentile(95) is None

    def test_max_key(self):
        h = Histogram("x")
        assert h.max_key() is None
        h.add(3)
        h.add(11)
        assert h.max_key() == 11

    def test_group_accessors(self):
        g = StatGroup("g")
        g.counter("a").add()
        g.histogram("h").add(1)
        assert "a" in g and "h" in g
        assert g.names() == ["a", "h"]
        assert g.as_dict() == {"a": 1, "h": {1: 1}}

    def test_group_type_conflict(self):
        g = StatGroup("g")
        g.counter("a")
        with pytest.raises(TypeError):
            g.histogram("a")

    def test_group_reset(self):
        g = StatGroup("g")
        g.counter("a").add()
        g.reset()
        assert g["a"].value == 0
