"""Engine tests for the CBC and GMAC paths and the arrival frontier."""

import pytest

from repro.config import DramConfig, SecureConfig
from repro.mem.controller import MemoryController
from repro.secure.engine import SecureMemoryEngine
from repro.secure.metadata import MetadataLayout
from repro.util.statistics import StatGroup


def make_engine(**secure_kwargs):
    config = SecureConfig(**secure_kwargs)
    controller = MemoryController(DramConfig())
    layout = MetadataLayout(protected_bytes=1 << 20)
    stats = StatGroup("sec")
    engine = SecureMemoryEngine(config, layout, controller, stats=stats)
    return engine, controller


class TestCbcEngine:
    def test_cbc_data_later_than_ctr(self):
        ctr, _ = make_engine()
        cbc, _ = make_engine(encryption_mode="cbc")
        f_ctr = ctr.fetch_line(0, 0)
        f_cbc = cbc.fetch_line(0, 0)
        assert f_cbc.data_time > f_ctr.data_time

    def test_cbc_needs_no_counter_fetches(self):
        engine, controller = make_engine(encryption_mode="cbc")
        for i in range(8):
            engine.fetch_line(i * 4096, 1000 * i)
        assert controller.stats["metadata_accesses"].value == 0

    def test_cbc_verify_tracks_full_line_decrypt(self):
        engine, _ = make_engine(encryption_mode="cbc")
        fetch = engine.fetch_line(0, 0)
        # Verification (CBC-MAC) completes with the serial decryption of
        # the full line, so the gap is bounded by the serial tail plus
        # the in-order queue -- far smaller relative to data_time.
        assert fetch.verify_time >= fetch.data_time

    def test_cbc_gate_respected(self):
        engine, _ = make_engine(encryption_mode="cbc")
        fetch = engine.fetch_line(0, 0, gate_time=9000)
        assert fetch.data_time > 9000


class TestGmacEngine:
    def test_gmac_narrows_gap(self):
        hmac, _ = make_engine(mac_scheme="hmac")
        gmac, _ = make_engine(mac_scheme="gmac")
        gap_hmac = hmac.fetch_line(0, 0).gap
        gap_gmac = gmac.fetch_line(0, 0).gap
        assert gap_gmac < gap_hmac
        assert gap_gmac <= SecureConfig().gmac_latency + 2

    def test_gmac_still_verifies_after_data(self):
        engine, _ = make_engine(mac_scheme="gmac")
        fetch = engine.fetch_line(0, 0)
        assert fetch.verify_time > fetch.data_time - 1


class TestArrivalFrontier:
    def test_frontier_before_any_request_is_zero(self):
        engine, _ = make_engine()
        assert engine.auth_frontier(0) == 0

    def test_frontier_excludes_unarrived_blocks(self):
        engine, _ = make_engine()
        fetch = engine.fetch_line(0, 0)
        # An instruction issuing before the block arrived cannot depend
        # on it, so the frontier there is still empty.
        assert engine.auth_frontier(fetch.mem_done - 1) == 0
        assert engine.auth_frontier(fetch.mem_done) == fetch.verify_time

    def test_frontier_monotone(self):
        engine, _ = make_engine()
        for i in range(6):
            engine.fetch_line(i * 4096, 500 * i)
        values = [engine.auth_frontier(t) for t in range(0, 6000, 250)]
        assert values == sorted(values)

    def test_frontier_disabled_without_authentication(self):
        config = SecureConfig()
        controller = MemoryController(DramConfig())
        layout = MetadataLayout(protected_bytes=1 << 20)
        engine = SecureMemoryEngine(config, layout, controller,
                                    authentication_enabled=False)
        engine.fetch_line(0, 0)
        assert engine.auth_frontier(10**9) == 0


class TestMshr:
    def test_limited_mshrs_throttle_misses(self):
        import dataclasses

        from repro import SimConfig, generate_trace, get_profile, run_trace

        trace = generate_trace(get_profile("swim"), 6000)
        few = dataclasses.replace(SimConfig(), mshr_entries=1)
        many = dataclasses.replace(SimConfig(), mshr_entries=32)
        slow = run_trace(trace, few, "decrypt-only")
        fast = run_trace(trace, many, "decrypt-only")
        assert slow.ipc < fast.ipc
        assert slow.stats["mshr_stall_events"].value > 0
