"""Merkle tree (functional) and CHTree timing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig
from repro.errors import IntegrityError
from repro.mem.controller import MemoryController
from repro.secure.hash_tree import HashTreeTiming, MerkleTree
from repro.secure.metadata import MetadataLayout


class TestMerkleFunctional:
    def test_update_then_verify(self):
        tree = MerkleTree(num_leaves=16, arity=4)
        tree.update(3, b"hello line")
        assert tree.verify(3, b"hello line")

    def test_unwritten_leaf_fails(self):
        tree = MerkleTree(num_leaves=16)
        with pytest.raises(IntegrityError):
            tree.verify(0, b"anything")

    def test_tamper_detected(self):
        tree = MerkleTree(num_leaves=16)
        tree.update(5, b"original")
        with pytest.raises(IntegrityError):
            tree.verify(5, b"originaX")

    def test_replay_detected(self):
        """The attack MACs alone cannot stop: restore stale data."""
        tree = MerkleTree(num_leaves=16)
        tree.update(5, b"version1")
        tree.update(5, b"version2")
        with pytest.raises(IntegrityError):
            tree.verify(5, b"version1")
        assert tree.verify(5, b"version2")

    def test_cross_leaf_splice_detected(self):
        """Moving a valid leaf to another index must fail (address binding)."""
        tree = MerkleTree(num_leaves=16)
        tree.update(1, b"payload")
        tree.update(2, b"other")
        with pytest.raises(IntegrityError):
            tree.verify(2, b"payload")

    def test_root_changes_on_update(self):
        tree = MerkleTree(num_leaves=16)
        tree.update(0, b"a")
        root1 = tree.root
        tree.update(15, b"b")
        assert tree.root != root1

    def test_single_leaf_tree(self):
        tree = MerkleTree(num_leaves=1)
        tree.update(0, b"only")
        assert tree.verify(0, b"only")

    def test_bounds(self):
        tree = MerkleTree(num_leaves=4)
        with pytest.raises(ValueError):
            tree.update(4, b"x")
        with pytest.raises(ValueError):
            tree.verify(-1, b"x")
        with pytest.raises(ValueError):
            MerkleTree(num_leaves=0)
        with pytest.raises(ValueError):
            MerkleTree(num_leaves=4, arity=1)

    @settings(max_examples=25, deadline=None)
    @given(
        leaf=st.integers(0, 63),
        data=st.binary(min_size=1, max_size=64),
        flip_byte=st.integers(0, 63),
        flip_mask=st.integers(1, 255),
    )
    def test_any_single_byte_tamper_detected(self, leaf, data, flip_byte,
                                             flip_mask):
        tree = MerkleTree(num_leaves=64, arity=4)
        padded = data.ljust(64, b"\x00")
        tree.update(leaf, padded)
        tampered = bytearray(padded)
        tampered[flip_byte] ^= flip_mask
        with pytest.raises(IntegrityError):
            tree.verify(leaf, bytes(tampered))


class TestHashTreeTiming:
    def _setup(self):
        layout = MetadataLayout(protected_bytes=1 << 20)
        controller = MemoryController(DramConfig())
        timing = HashTreeTiming(layout, cache_bytes=8 * 1024, hash_latency=74)
        return layout, controller, timing

    def test_cold_walk_fetches_all_levels(self):
        layout, controller, timing = self._setup()
        ready, extra = timing.verification_extra(0, 1000, controller)
        assert ready > 1000
        # Node fetches serialise; hashing is pipelined (one extra hash).
        assert extra == 74
        assert controller.stats["metadata_accesses"].value == \
            layout.tree_levels

    def test_cached_ancestors_shorten_walk(self):
        layout, controller, timing = self._setup()
        timing.verification_extra(0, 1000, controller)
        # Line 1 shares line 0's entire path (arity 4): all nodes cached.
        ready, extra = timing.verification_extra(64, 50_000, controller)
        assert extra == 0
        assert ready == 50_000

    def test_far_line_shares_only_top_levels(self):
        layout, controller, timing = self._setup()
        timing.verification_extra(0, 1000, controller)
        far_addr = (layout.num_lines - 1) * layout.line_bytes
        _, extra = timing.verification_extra(far_addr, 50_000, controller)
        assert 0 < extra < 74 * layout.tree_levels

    def test_update_touch_dirties_cached_nodes(self):
        layout, controller, timing = self._setup()
        timing.verification_extra(0, 1000, controller)
        timing.touch_for_update(0)
        leaf_node = layout.tree_path(0)[0]
        assert timing.node_cache.lookup(leaf_node).dirty
