"""Address obfuscation (re-map table + re-map cache) tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig
from repro.mem.controller import MemoryController
from repro.secure.metadata import MetadataLayout
from repro.secure.remap import AddressObfuscator, RemapTable


class TestRemapTable:
    def test_identity_until_reshuffle(self):
        table = RemapTable(16, random.Random(1))
        assert [table.lookup(i) for i in range(16)] == list(range(16))

    def test_reshuffle_is_swap(self):
        table = RemapTable(16, random.Random(1))
        new_slot, displaced = table.reshuffle(3)
        assert table.lookup(3) == new_slot
        if displaced != 3:
            assert table.lookup(displaced) == 3

    def test_bounds(self):
        table = RemapTable(4, random.Random(0))
        with pytest.raises(ValueError):
            table.lookup(4)
        with pytest.raises(ValueError):
            table.reshuffle(-1)
        with pytest.raises(ValueError):
            RemapTable(0, random.Random(0))

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        ops=st.lists(st.integers(0, 31), min_size=1, max_size=100),
    )
    def test_always_a_permutation(self, seed, ops):
        """The core invariant: remapping never aliases two chunks."""
        table = RemapTable(32, random.Random(seed))
        for chunk in ops:
            table.reshuffle(chunk)
        assert table.is_permutation()


def _setup(cache_bytes=4096, chunk_bytes=1024, shuffle_period=4):
    layout = MetadataLayout(protected_bytes=1 << 20)
    controller = MemoryController(DramConfig())
    obf = AddressObfuscator(layout, random.Random(7),
                            cache_bytes=cache_bytes,
                            chunk_bytes=chunk_bytes,
                            shuffle_period=shuffle_period)
    return layout, controller, obf


class TestAddressTransform:
    def test_scramble_is_line_permutation(self):
        _, _, obf = _setup()
        for chunk in range(20):
            mapped = {obf._scramble(chunk, i)
                      for i in range(obf.lines_per_chunk)}
            assert mapped == set(range(obf.lines_per_chunk))

    def test_remap_preserves_byte_offset(self):
        _, _, obf = _setup()
        assert obf.remap_address(0x123) % 64 == 0x123 % 64

    def test_distinct_lines_stay_distinct(self):
        _, _, obf = _setup()
        lines = [obf.remap_address(i * 64) // 64 for i in range(256)]
        assert len(set(lines)) == 256

    def test_address_is_not_identity_for_most_lines(self):
        """The scramble must hide line identities even before shuffling."""
        _, _, obf = _setup()
        moved = sum(1 for i in range(256) if obf.remap_address(i * 64) != i * 64)
        assert moved > 128


class TestObfuscatorTiming:
    def test_resolution_latency_hit(self):
        layout, controller, obf = _setup()
        obf.resolve(128, 100, controller)  # warm the entry
        _, ready = obf.resolve(128, 10_000, controller)
        assert ready == 10_000 + obf.cache_latency

    def test_cache_miss_fetches_entry(self):
        layout, controller, obf = _setup()
        obf.resolve(128, 100, controller)
        assert controller.stats["metadata_accesses"].value == 1

    def test_same_chunk_shares_entry(self):
        layout, controller, obf = _setup(chunk_bytes=1024)
        obf.resolve(0, 100, controller)
        obf.resolve(512, 5000, controller)  # same 1KB chunk
        assert controller.stats["metadata_accesses"].value == 1

    def test_writeback_goes_to_remapped_location(self):
        layout, controller, obf = _setup()
        target = obf.reshuffle_on_writeback(128, 100, controller)
        assert target == obf.remap_address(128)
        assert controller.stats["line_writes"].value == 1

    def test_periodic_shuffle_bursts_traffic(self):
        layout, controller, obf = _setup(shuffle_period=2)
        obf.reshuffle_on_writeback(0, 100, controller)
        before = controller.stats["line_writes"].value
        obf.reshuffle_on_writeback(0, 200, controller)  # 2nd: shuffles
        after = controller.stats["line_writes"].value
        assert after - before == obf.lines_per_chunk + 1

    def test_chunk_must_be_whole_lines(self):
        layout = MetadataLayout(protected_bytes=1 << 20)
        with pytest.raises(ValueError):
            AddressObfuscator(layout, random.Random(0), chunk_bytes=100)

    def test_reset_clears_state(self):
        layout, controller, obf = _setup()
        obf.resolve(0, 100, controller)
        obf.reshuffle_on_writeback(0, 100, controller)
        obf.reset()
        assert obf.remap_cache.occupancy == 0
        assert obf._writebacks_per_chunk == {}
