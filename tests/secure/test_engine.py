"""SecureMemoryEngine integration tests."""

import random

import pytest

from repro.config import DramConfig, SecureConfig
from repro.mem.controller import MemoryController
from repro.secure.engine import SecureMemoryEngine
from repro.secure.metadata import MetadataLayout
from repro.util.statistics import StatGroup


def make_engine(**secure_kwargs):
    config = SecureConfig(**secure_kwargs)
    controller = MemoryController(DramConfig())
    layout = MetadataLayout(protected_bytes=1 << 20)
    rng = random.Random(42)
    stats = StatGroup("sec")
    engine = SecureMemoryEngine(config, layout, controller, rng, stats)
    return engine, controller


class TestDataAndVerifyTimes:
    def test_verify_lags_data(self):
        """The paper's premise: a positive decrypt-to-verify gap."""
        engine, _ = make_engine()
        fetch = engine.fetch_line(0, 0)
        assert fetch.verify_time > fetch.data_time
        assert fetch.gap > 0

    def test_tags_increment(self):
        engine, _ = make_engine()
        f1 = engine.fetch_line(0, 0)
        f2 = engine.fetch_line(4096, 100)
        assert (f1.tag, f2.tag) == (0, 1)
        assert engine.last_request == 1

    def test_auth_completion_lookup(self):
        engine, _ = make_engine()
        fetch = engine.fetch_line(0, 0)
        assert engine.auth_completion(fetch.tag) == fetch.verify_time

    def test_gate_time_delays_everything(self):
        engine, _ = make_engine()
        gated = engine.fetch_line(0, 0, gate_time=5000)
        assert gated.data_time > 5000

    def test_counter_cache_miss_first_hit_second(self):
        engine, controller = make_engine()
        engine.fetch_line(0, 0)
        meta_first = controller.stats["metadata_accesses"].value
        engine.fetch_line(64, 10_000)  # adjacent line: counter block cached
        assert controller.stats["metadata_accesses"].value == meta_first


class TestAuthenticationDisabled:
    def test_baseline_has_no_gap(self):
        config = SecureConfig()
        controller = MemoryController(DramConfig())
        layout = MetadataLayout(protected_bytes=1 << 20)
        engine = SecureMemoryEngine(config, layout, controller,
                                    authentication_enabled=False)
        fetch = engine.fetch_line(0, 0)
        assert fetch.gap == 0
        assert fetch.tag == -1

    def test_baseline_skips_mac_rider(self):
        config = SecureConfig()
        controller = MemoryController(DramConfig())
        layout = MetadataLayout(protected_bytes=1 << 20)
        SecureMemoryEngine(config, layout, controller,
                           authentication_enabled=False)
        assert controller.mac_rider_bytes == 0


class TestHashTreeIntegration:
    def test_tree_widens_gap(self):
        plain, _ = make_engine()
        treed, _ = make_engine(hash_tree_enabled=True)
        f_plain = plain.fetch_line(0, 0)
        f_tree = treed.fetch_line(0, 0)
        assert f_tree.gap > f_plain.gap

    def test_tree_cache_warms_up(self):
        engine, controller = make_engine(hash_tree_enabled=True)
        engine.fetch_line(0, 0)
        fetches_cold = controller.stats["metadata_accesses"].value
        engine.fetch_line(64, 50_000)
        # Adjacent line shares the whole path: no new tree fetches, and the
        # counter block is shared too.
        assert controller.stats["metadata_accesses"].value == fetches_cold


class TestObfuscationIntegration:
    def test_requires_rng(self):
        config = SecureConfig(obfuscation_enabled=True)
        controller = MemoryController(DramConfig())
        layout = MetadataLayout(protected_bytes=1 << 20)
        with pytest.raises(ValueError):
            SecureMemoryEngine(config, layout, controller)

    def test_remap_adds_latency(self):
        plain, _ = make_engine()
        obf, _ = make_engine(obfuscation_enabled=True)
        f_plain = plain.fetch_line(0, 0)
        f_obf = obf.fetch_line(0, 0)
        assert f_obf.data_time > f_plain.data_time

    def test_writeback_reshuffles(self):
        engine, controller = make_engine(obfuscation_enabled=True)
        engine.write_line(128, 100)
        assert engine.obfuscator.table.lookup(2) is not None
        assert controller.stats["line_writes"].value == 1


class TestWriteback:
    def test_writeback_without_obfuscation(self):
        engine, controller = make_engine()
        engine.write_line(0, 100)
        assert controller.stats["line_writes"].value == 1

    def test_writeback_bumps_counter(self):
        engine, _ = make_engine()
        engine.write_line(0, 100)
        counter_addr = engine.layout.counter_addr(0)
        assert engine.counter_cache._cache.lookup(counter_addr).dirty

    def test_requires_controller(self):
        with pytest.raises(ValueError):
            SecureMemoryEngine(SecureConfig(), None, None)
