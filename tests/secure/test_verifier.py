"""MAC verifier unit tests (address/counter binding)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secure.verifier import MacVerifier


@pytest.fixture
def verifier():
    return MacVerifier(b"\x42" * 32, mac_bits=64)


class TestVerifier:
    def test_roundtrip(self, verifier):
        tag = verifier.tag(0x2000, 5, b"cipher-bytes")
        assert verifier.verify(0x2000, 5, b"cipher-bytes", tag)

    def test_tag_width(self, verifier):
        assert len(verifier.tag(0, 0, b"x")) == 8

    def test_ciphertext_binding(self, verifier):
        tag = verifier.tag(0x2000, 5, b"cipher-bytes")
        assert not verifier.verify(0x2000, 5, b"cipher-bytez", tag)

    def test_address_binding_blocks_relocation(self, verifier):
        tag = verifier.tag(0x2000, 5, b"cipher")
        assert not verifier.verify(0x2020, 5, b"cipher", tag)

    def test_counter_binding_blocks_replay(self, verifier):
        tag = verifier.tag(0x2000, 5, b"cipher")
        assert not verifier.verify(0x2000, 6, b"cipher", tag)

    def test_key_separation(self):
        a = MacVerifier(b"a" * 32)
        b = MacVerifier(b"b" * 32)
        assert a.tag(0, 0, b"x") != b.tag(0, 0, b"x")

    @settings(max_examples=30, deadline=None)
    @given(addr=st.integers(0, 2**40), counter=st.integers(0, 2**63),
           data=st.binary(max_size=64))
    def test_verify_accepts_own_tags(self, addr, counter, data):
        v = MacVerifier(b"\x42" * 32, mac_bits=64)
        tag = v.tag(addr, counter, data)
        assert v.verify(addr, counter, data, tag)
