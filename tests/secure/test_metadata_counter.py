"""Metadata layout, counter cache and decryption engine tests."""

import pytest

from repro.errors import ConfigError
from repro.secure.counter_cache import CounterCache
from repro.secure.decryption import DecryptionEngine
from repro.secure.metadata import MetadataLayout


class TestLayout:
    def test_regions_do_not_overlap(self):
        layout = MetadataLayout(protected_bytes=1 << 20)
        assert layout.counter_base == 1 << 20
        assert layout.remap_base > layout.counter_base
        assert layout.tree_base > layout.remap_base
        assert layout.total_bytes > layout.tree_base

    def test_line_index(self):
        layout = MetadataLayout(protected_bytes=1 << 20, line_bytes=64)
        assert layout.line_index(0) == 0
        assert layout.line_index(63) == 0
        assert layout.line_index(64) == 1

    def test_line_index_bounds(self):
        layout = MetadataLayout(protected_bytes=1 << 20)
        with pytest.raises(ConfigError):
            layout.line_index(1 << 20)
        with pytest.raises(ConfigError):
            layout.line_index(-1)

    def test_counter_addresses_distinct(self):
        layout = MetadataLayout(protected_bytes=1 << 20, counter_bytes=8)
        addrs = {layout.counter_addr(i) for i in range(100)}
        assert len(addrs) == 100

    def test_tree_levels_shrink_to_root(self):
        layout = MetadataLayout(protected_bytes=1 << 20, line_bytes=64,
                                hash_bytes=16)
        # 16384 lines, arity 4 -> 4096, 1024, 256, 64, 16, 4, 1 nodes.
        assert layout.tree_arity == 4
        assert layout._level_nodes[-1] == 1
        for a, b in zip(layout._level_nodes, layout._level_nodes[1:]):
            assert b == -(-a // 4)

    def test_tree_path_is_leaf_up(self):
        layout = MetadataLayout(protected_bytes=1 << 20)
        path = layout.tree_path(0)
        assert len(path) == layout.tree_levels
        assert path[0] == layout.tree_node_addr(0, 0)

    def test_tree_path_shares_ancestors(self):
        layout = MetadataLayout(protected_bytes=1 << 20)
        p0 = layout.tree_path(0)
        p1 = layout.tree_path(1)  # same leaf-level node (arity 4)
        assert p0 == p1
        p_far = layout.tree_path(layout.num_lines - 1)
        assert p0[-1] == p_far[-1]  # same top node
        assert p0[0] != p_far[0]

    def test_unaligned_region_rejected(self):
        with pytest.raises(ConfigError):
            MetadataLayout(protected_bytes=100, line_bytes=64)


class TestCounterCache:
    def test_miss_then_hit(self):
        cache = CounterCache(size_bytes=4096)
        assert not cache.lookup_counter(0x1000)
        assert cache.lookup_counter(0x1000)

    def test_spatial_locality_of_counters(self):
        """Counters for adjacent lines share a counter-cache line."""
        layout = MetadataLayout(protected_bytes=1 << 20, counter_bytes=8)
        cache = CounterCache(size_bytes=4096, line_bytes=64)
        assert not cache.lookup_counter(layout.counter_addr(0))
        for line in range(1, layout.counters_per_line()):
            assert cache.lookup_counter(layout.counter_addr(line))

    def test_bump_marks_dirty(self):
        cache = CounterCache(size_bytes=4096)
        cache.bump(0)
        assert cache._cache.lookup(0).dirty


class TestDecryptionEngine:
    def test_pad_hidden_behind_fetch(self):
        engine = DecryptionEngine(decrypt_latency=80, xor_latency=1)
        assert engine.data_ready(pad_start=0, ciphertext_arrival=200) == 201

    def test_pad_on_critical_path_when_late(self):
        engine = DecryptionEngine(decrypt_latency=80, xor_latency=1)
        assert engine.data_ready(pad_start=190, ciphertext_arrival=200) == 271

    def test_validation(self):
        with pytest.raises(ValueError):
            DecryptionEngine(decrypt_latency=0)
