"""Authentication queue semantics (Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secure.auth_queue import NO_REQUEST, AuthQueue


class TestBasics:
    def test_empty_queue_last_request(self):
        queue = AuthQueue()
        assert queue.last_request == NO_REQUEST
        assert queue.completion_time(NO_REQUEST) == 0

    def test_single_request_latency(self):
        queue = AuthQueue(mac_latency=74)
        tag, done = queue.enqueue(100)
        assert tag == 0
        assert done == 174
        assert queue.last_request == 0

    def test_tags_are_sequential(self):
        queue = AuthQueue()
        tags = [queue.enqueue(i)[0] for i in range(5)]
        assert tags == [0, 1, 2, 3, 4]

    def test_extra_latency_added(self):
        queue = AuthQueue(mac_latency=74)
        _, done = queue.enqueue(0, extra_latency=100)
        assert done == 74 + 100


class TestInOrderCompletion:
    def test_later_request_never_completes_earlier(self):
        queue = AuthQueue(mac_latency=74, throughput=18)
        _, d1 = queue.enqueue(0, extra_latency=500)   # slow request
        _, d2 = queue.enqueue(10)                      # fast request
        assert d2 >= d1

    def test_pipelined_throughput(self):
        queue = AuthQueue(mac_latency=74, throughput=18)
        _, d1 = queue.enqueue(0)
        _, d2 = queue.enqueue(0)
        # Second request starts at the initiation interval, not after d1.
        assert d2 == 18 + 74

    def test_idle_queue_restarts_clean(self):
        queue = AuthQueue(mac_latency=74, throughput=18)
        queue.enqueue(0)
        _, done = queue.enqueue(10_000)
        assert done == 10_000 + 74


class TestBackpressure:
    def test_full_queue_delays_entry(self):
        queue = AuthQueue(depth=2, mac_latency=100, throughput=1)
        _, d0 = queue.enqueue(0)       # completes at 100
        queue.enqueue(0)
        _, d2 = queue.enqueue(0)       # must wait for request 0's slot
        assert d2 >= d0 + 100

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            AuthQueue(depth=0)
        with pytest.raises(ValueError):
            AuthQueue(mac_latency=0)


class TestDrain:
    def test_drained_after_equals_completion(self):
        queue = AuthQueue()
        for i in range(4):
            queue.enqueue(10 * i)
        assert queue.drained_after(3) == queue.completion_time(3)

    def test_pending_at(self):
        queue = AuthQueue(mac_latency=74, throughput=18)
        queue.enqueue(0)
        queue.enqueue(0)
        assert queue.pending_at(0) == 2
        assert queue.pending_at(10_000) == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(ready_times=st.lists(st.integers(0, 10_000), min_size=1,
                                max_size=40))
    def test_completions_monotone_nondecreasing(self, ready_times):
        queue = AuthQueue(depth=8)
        dones = [queue.enqueue(t)[1] for t in ready_times]
        assert all(b >= a for a, b in zip(dones, dones[1:]))

    @settings(max_examples=50, deadline=None)
    @given(ready_times=st.lists(st.integers(0, 10_000), min_size=1,
                                max_size=40))
    def test_completion_after_ready_plus_latency(self, ready_times):
        queue = AuthQueue(depth=8, mac_latency=74)
        for t in ready_times:
            _, done = queue.enqueue(t)
            assert done >= t + 74
