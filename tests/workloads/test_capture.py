"""Execution-driven trace capture tests (functional -> timing bridge)."""

import pytest

from repro import SimConfig, load_program, make_policy, run_trace
from repro.func.machine import SecureMachine
from repro.func import programs
from repro.workloads.capture import capture_trace
from repro.workloads.trace import Op


def captured(source, data=None, max_steps=5000):
    machine = SecureMachine(make_policy("decrypt-only"))
    load_program(machine, source, data=data)
    return machine, capture_trace(machine, max_steps)


class TestCapture:
    def test_captures_whole_program(self):
        machine, trace = captured(programs.FIBONACCI)
        assert machine.io_log == [programs.FIBONACCI_EXPECTED]
        assert len(trace) == machine.steps

    def test_ops_classified(self):
        _, trace = captured(programs.ARRAY_SUM,
                            data=programs.ARRAY_SUM_DATA)
        mix = trace.op_mix()
        # Loop body: 1 load per 5 instructions.
        assert mix["load"] == pytest.approx(0.2, abs=0.02)
        assert "branch" in mix and "ialu" in mix

    def test_addresses_recorded(self):
        _, trace = captured(programs.ARRAY_SUM,
                            data=programs.ARRAY_SUM_DATA)
        loads = [i for i in trace if i.op == Op.LOAD]
        assert loads[0].addr == 0x2000
        assert loads[1].addr == 0x2004
        assert trace.footprint_bytes >= 64 * 4

    def test_branch_annotation(self):
        _, trace = captured(programs.FIBONACCI)
        branches = [i for i in trace if i.op == Op.BRANCH]
        assert branches, "loop must contain branches"
        # The loop branch becomes predictable; only early iterations and
        # the final fall-through mispredict.
        mispredicts = sum(i.mispredict for i in branches)
        assert mispredicts < len(branches)

    def test_dataflow_registers_preserved(self):
        _, trace = captured(programs.FIBONACCI)
        adds = [i for i in trace if i.op == Op.IALU and len(i.srcs) == 2]
        assert any(i.dest >= 0 for i in adds)

    def test_max_steps_truncates(self):
        machine = SecureMachine(make_policy("decrypt-only"))
        load_program(machine, "loop:\n jmp loop")
        trace = capture_trace(machine, max_steps=100)
        assert len(trace) == 100

    def test_fault_ends_capture_cleanly(self):
        machine = SecureMachine(make_policy("authen-then-issue"))
        load_program(machine, programs.FIBONACCI)
        machine.mem.flip_bits(0, b"\x01")
        trace = capture_trace(machine, max_steps=100)
        assert len(trace) == 0  # tamper caught before any commit


class TestReplayOnTimingModel:
    @pytest.mark.parametrize("source,data,expected", [
        (programs.ARRAY_SUM, programs.ARRAY_SUM_DATA,
         programs.ARRAY_SUM_EXPECTED),
        (programs.LIST_WALK, None, programs.LIST_WALK_EXPECTED),
        (programs.STORE_RELOAD, None, programs.STORE_RELOAD_EXPECTED),
    ])
    def test_captured_traces_replay(self, source, data, expected):
        if source is programs.LIST_WALK:
            data = programs.list_walk_data()
        machine, trace = captured(source, data=data)
        assert machine.io_log == [expected]
        result = run_trace(trace, SimConfig(), "authen-then-commit")
        assert result.cycles > 0
        assert 0 < result.ipc < 8

    def test_policies_order_on_captured_trace(self):
        """The pointer-chasing list walk punishes fetch gating more than
        the predictable array sum does."""
        machine, trace = captured(programs.LIST_WALK,
                                  data=programs.list_walk_data(nodes=64,
                                                               stride=0x100))
        base = run_trace(trace, SimConfig(), "decrypt-only").ipc
        issue = run_trace(trace, SimConfig(), "authen-then-issue").ipc
        write = run_trace(trace, SimConfig(), "authen-then-write").ipc
        assert issue <= write <= base * 1.001
