"""Workload profile and trace generator tests."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.spec import (
    SPEC2000_PROFILES,
    fp_benchmarks,
    get_profile,
    int_benchmarks,
)
from repro.workloads.trace import Op, Trace, TraceInst
from repro.workloads.tracegen import DATA_BASE, generate_trace


class TestProfiles:
    def test_eighteen_benchmarks(self):
        assert len(SPEC2000_PROFILES) == 18
        assert len(int_benchmarks()) == 8
        assert len(fp_benchmarks()) == 10

    def test_suites_disjoint(self):
        assert not set(int_benchmarks()) & set(fp_benchmarks())

    def test_get_profile(self):
        assert get_profile("mcf").suite == "int"
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_int_profiles_have_no_fp(self):
        for name in int_benchmarks():
            assert get_profile(name).fp_fraction == 0.0

    def test_validation_rejects_bad_fractions(self):
        base = get_profile("mcf")
        with pytest.raises(ValueError):
            dataclasses.replace(base, load_fraction=0.9, store_fraction=0.2)
        with pytest.raises(ValueError):
            dataclasses.replace(base, chase_fraction=1.5)

    def test_memory_bound_benchmarks_have_large_footprints(self):
        for name in ("mcf", "swim", "mgrid"):
            assert get_profile(name).footprint_bytes >= 8 * 1024 * 1024


class TestTraceContainer:
    def test_trace_inst_repr_and_flags(self):
        inst = TraceInst(0x100, Op.LOAD, dest=3, srcs=(1,), addr=0x2000)
        assert inst.is_mem
        assert "load" in repr(inst)
        assert not TraceInst(0, Op.IALU).is_mem

    def test_trace_len_iter(self):
        trace = Trace("t", [TraceInst(0, Op.IALU)] * 5)
        assert len(trace) == 5
        assert sum(1 for _ in trace) == 5

    def test_op_mix(self):
        trace = Trace("t", [TraceInst(0, Op.LOAD), TraceInst(4, Op.IALU)])
        mix = trace.op_mix()
        assert mix["load"] == 0.5


class TestGenerator:
    def test_deterministic(self):
        p = get_profile("twolf")
        a = generate_trace(p, 500, seed=1)
        b = generate_trace(p, 500, seed=1)
        assert [(i.pc, i.op, i.addr) for i in a] == [
            (i.pc, i.op, i.addr) for i in b
        ]

    def test_seed_changes_trace(self):
        p = get_profile("twolf")
        a = generate_trace(p, 500, seed=1)
        b = generate_trace(p, 500, seed=2)
        assert [(i.pc, i.op) for i in a] != [(i.pc, i.op) for i in b]

    def test_requested_length(self):
        assert len(generate_trace(get_profile("gcc"), 321)) == 321
        assert len(generate_trace(get_profile("gcc"), 0)) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(get_profile("gcc"), -1)

    def test_op_mix_tracks_profile(self):
        p = get_profile("swim")
        trace = generate_trace(p, 20_000)
        mix = trace.op_mix()
        assert mix["load"] == pytest.approx(p.load_fraction, abs=0.02)
        assert mix["store"] == pytest.approx(p.store_fraction, abs=0.02)
        assert mix["fpu"] == pytest.approx(p.fp_fraction, abs=0.02)

    def test_mem_ops_have_addresses(self):
        for inst in generate_trace(get_profile("art"), 2000):
            if inst.is_mem:
                assert inst.addr >= DATA_BASE
            else:
                assert inst.addr == -1

    def test_addresses_within_protected_region(self):
        p = get_profile("mcf")  # largest footprint
        for inst in generate_trace(p, 5000):
            if inst.is_mem:
                assert inst.addr < 256 * 1024 * 1024

    def test_pcs_within_code_region(self):
        p = get_profile("gcc")
        for inst in generate_trace(p, 5000):
            assert 0 <= inst.pc < p.code_bytes
            assert inst.pc % 4 == 0

    def test_mispredicts_only_on_branches(self):
        for inst in generate_trace(get_profile("twolf"), 5000):
            if inst.mispredict:
                assert inst.op == Op.BRANCH

    def test_mispredict_rate_tracks_profile(self):
        p = get_profile("twolf")
        trace = generate_trace(p, 30_000)
        branches = [i for i in trace if i.op == Op.BRANCH]
        rate = sum(i.mispredict for i in branches) / len(branches)
        assert rate == pytest.approx(p.mispredict_rate, abs=0.02)

    def test_loads_have_destinations(self):
        for inst in generate_trace(get_profile("gap"), 2000):
            if inst.op == Op.LOAD:
                assert inst.dest > 0

    def test_chase_heavy_profile_has_load_dependent_loads(self):
        trace = generate_trace(get_profile("mcf"), 5000)
        load_dests = set()
        chases = 0
        for inst in trace:
            if inst.op == Op.LOAD:
                if any(s in load_dests for s in inst.srcs):
                    chases += 1
                load_dests.add(inst.dest)
            elif inst.dest in load_dests:
                load_dests.discard(inst.dest)
        loads = sum(1 for i in trace if i.op == Op.LOAD)
        assert chases / loads > 0.15

    @settings(max_examples=10, deadline=None)
    @given(name=st.sampled_from(sorted(SPEC2000_PROFILES)))
    def test_sources_are_valid_registers(self, name):
        for inst in generate_trace(get_profile(name), 300):
            for src in inst.srcs:
                assert 0 <= src < 64
            assert -1 <= inst.dest < 64
