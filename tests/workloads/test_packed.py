"""Packed (columnar) trace representation tests.

``Trace.packed()`` is the hot-loop input format; it must be an exact,
cached, columnar mirror of the ``TraceInst`` object stream.
"""

from repro.config import SimConfig
from repro.sim.runner import run_trace
from repro.workloads.trace import (Op, PackedTrace, Trace, TraceInst,
                                   pack_instructions)
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace


def sample_trace(n=600, seed=11):
    return generate_trace(get_profile("mcf"), n, seed=seed)


class TestPackEquivalence:
    def test_rows_mirror_instructions(self):
        trace = sample_trace()
        packed = trace.packed()
        assert len(packed) == len(trace)
        for inst, row in zip(trace, packed.rows()):
            pc, op, dest, srcs, addr, mispredict = row
            assert pc == inst.pc
            assert op == inst.op
            assert dest == inst.dest
            assert tuple(srcs) == tuple(inst.srcs)
            assert addr == inst.addr
            assert mispredict == inst.mispredict

    def test_columns_are_parallel(self):
        packed = sample_trace().packed()
        columns = packed.columns()
        lengths = {len(column) for column in columns}
        assert lengths == {len(packed)}

    def test_pack_instructions_matches_trace_packed(self):
        trace = sample_trace()
        by_list = pack_instructions(list(trace))
        by_trace = trace.packed()
        assert list(by_list.rows()) == list(by_trace.rows())

    def test_packed_is_cached(self):
        trace = sample_trace()
        assert trace.packed() is trace.packed()

    def test_packed_type(self):
        assert isinstance(sample_trace().packed(), PackedTrace)


class TestReplayEquivalence:
    def test_packed_and_object_iteration_same_cycles(self):
        """Feeding the core a bare instruction list (packed on the fly)
        must reproduce the Trace-driven run exactly."""
        trace = sample_trace(n=800)
        config = SimConfig()
        via_trace = run_trace(trace, config, "authen-then-commit",
                              warmup=200)
        via_list = run_trace(list(trace), config, "authen-then-commit",
                             warmup=200)
        assert via_trace.cycles == via_list.cycles
        assert via_trace.instructions == via_list.instructions
        assert via_trace.stats.as_dict() == via_list.stats.as_dict()

    def test_handwritten_instructions_pack(self):
        insts = [TraceInst(0, Op.IALU, 1),
                 TraceInst(4, Op.LOAD, 2, (1,), 0x1000),
                 TraceInst(8, Op.STORE, -1, (2,), 0x2000),
                 TraceInst(12, Op.BRANCH, -1, (2,), -1, True)]
        packed = pack_instructions(insts)
        rows = list(packed.rows())
        assert rows[1][1] == Op.LOAD and rows[1][4] == 0x1000
        assert rows[3][5] is True
