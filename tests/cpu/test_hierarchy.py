"""Memory hierarchy tests: line timing propagation and policy gating.

``ifetch``/``load``/``store`` return ``(data_time, verify_time)``
tuples (the allocation-free fast path).
"""

import pytest

from repro.config import SimConfig
from repro.cpu.hierarchy import MemoryHierarchy
from repro.policies.registry import make_policy
from repro.util.rng import DeterministicRng


def make_hier(policy="authen-then-commit", **secure_kwargs):
    config = SimConfig()
    if secure_kwargs:
        config = config.with_secure(**secure_kwargs)
    rng = DeterministicRng(5).stream("remap")
    return MemoryHierarchy(config, make_policy(policy), rng=rng)


class TestBasicAccess:
    def test_l1_hit_is_fast(self):
        hier = make_hier()
        hier.load(0x1000, 0)
        data_time, _ = hier.load(0x1000, 10_000)
        assert data_time <= 10_002

    def test_miss_goes_to_memory(self):
        hier = make_hier()
        data_time, _ = hier.load(0x1000, 0)
        assert data_time > 100  # DRAM-class latency

    def test_verify_never_before_data(self):
        hier = make_hier()
        for addr in (0x1000, 0x2000, 0x1000, 0x80000):
            data_time, verify_time = hier.load(addr, 0)
            assert verify_time >= data_time

    def test_unverified_line_hit_sees_pending_verify(self):
        """The security-critical propagation: an L1 hit shortly after the
        fill still observes the line's future verify_time."""
        hier = make_hier()
        miss_data, miss_verify = hier.load(0x1000, 0)
        hit_data, hit_verify = hier.load(0x1004, miss_data + 1)
        assert hit_verify == miss_verify
        assert hit_data < hit_verify

    def test_old_line_hit_is_fully_verified(self):
        hier = make_hier()
        _, miss_verify = hier.load(0x1000, 0)
        late_data, late_verify = hier.load(0x1004, miss_verify + 10_000)
        assert late_verify == late_data

    def test_ifetch_uses_l1i(self):
        hier = make_hier()
        hier.ifetch(0x100, 0)
        assert hier.l1i.stats["misses"].value == 1
        assert hier.l1d.stats["misses"].value == 0

    def test_l2_shared_between_sides(self):
        hier = make_hier()
        hier.ifetch(0x40, 0)     # fills L2 line 0x40
        data_time, _ = hier.load(0x40, 10_000)
        # The load misses L1D but hits the unified L2.
        assert data_time < 10_000 + 100


class TestWriteback:
    def test_store_allocates_and_dirties(self):
        hier = make_hier()
        hier.store(0x1000, 0)
        line = hier.l1d.lookup(0x1000)
        assert line is not None and line.dirty

    def test_dirty_eviction_reaches_memory(self):
        hier = make_hier()
        # Write one line, then walk addresses mapping to the same L1 set
        # until it is evicted, then push the dirty line out of L2 too.
        hier.store(0x0, 0)
        l1_span = hier.l1d.config.size_bytes
        l2_span = hier.l2.config.size_bytes
        for i in range(1, hier.l2.config.associativity + 2):
            hier.load(i * l2_span, 1000 * i)
        assert hier.controller.stats["line_writes"].value >= 1


class TestFetchGating:
    def test_gate_time_delays_memory_fetch(self):
        hier = make_hier("commit+fetch")
        data_time, _ = hier.load(0x9000, 0, gate_time=50_000)
        assert data_time > 50_000

    def test_gate_ignored_on_hits(self):
        hier = make_hier("commit+fetch")
        hier.load(0x9000, 0)
        hit_data, _ = hier.load(0x9000, 10_000, gate_time=99_999)
        assert hit_data < 11_000


class TestObfuscationWiring:
    def test_policy_obfuscation_enables_remapper(self):
        hier = make_hier("commit+obfuscation")
        assert hier.engine.obfuscator is not None

    def test_plain_policy_has_no_remapper(self):
        hier = make_hier("authen-then-commit")
        assert hier.engine.obfuscator is None


class TestStats:
    def test_miss_summary_keys(self):
        hier = make_hier()
        hier.load(0x1000, 0)
        summary = hier.miss_summary()
        assert set(summary) == {"l1i", "l1d", "l2", "itlb", "dtlb"}

    def test_reset_stats_keeps_contents(self):
        hier = make_hier()
        hier.load(0x1000, 0)
        hier.reset_stats()
        assert hier.l1d.stats["misses"].value == 0
        assert hier.l1d.lookup(0x1000) is not None
