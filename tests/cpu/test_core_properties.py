"""Property-based tests of the timestamp core over random traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.sim.runner import run_trace
from repro.workloads.trace import Op, Trace, TraceInst


@st.composite
def random_traces(draw, max_len=120):
    """Arbitrary well-formed traces (valid regs, aligned pcs/addresses)."""
    length = draw(st.integers(1, max_len))
    out = []
    pc = 0
    for _ in range(length):
        op = draw(st.sampled_from(
            [Op.IALU, Op.IALU, Op.IALU, Op.IMUL, Op.FPU, Op.LOAD,
             Op.STORE, Op.BRANCH, Op.JUMP]))
        dest = draw(st.integers(-1, 63)) if op not in (Op.STORE,
                                                       Op.BRANCH,
                                                       Op.JUMP) else -1
        nsrcs = draw(st.integers(0, 2))
        srcs = tuple(draw(st.integers(0, 63)) for _ in range(nsrcs))
        addr = -1
        if op in (Op.LOAD, Op.STORE):
            addr = draw(st.integers(0, 1 << 22)) & ~3
        mispredict = op == Op.BRANCH and draw(st.booleans())
        out.append(TraceInst(pc, op, dest, srcs, addr, mispredict))
        pc = (pc + 4) % 4096
    return Trace("random", out)


POLICIES = ("decrypt-only", "authen-then-issue", "authen-then-commit",
            "authen-then-write", "commit+fetch")


class TestCoreProperties:
    @settings(max_examples=25, deadline=None)
    @given(trace=random_traces())
    def test_any_trace_terminates_with_positive_cycles(self, trace):
        result = run_trace(trace, SimConfig(), "authen-then-commit")
        assert result.cycles > 0
        assert result.instructions == len(trace)

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_baseline_dominates_every_policy(self, trace):
        base = run_trace(trace, SimConfig(), "decrypt-only").cycles
        for policy in POLICIES[1:]:
            gated = run_trace(trace, SimConfig(), policy).cycles
            assert gated >= base, policy

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_issue_gating_dominates_commit_gating(self, trace):
        issue = run_trace(trace, SimConfig(), "authen-then-issue").cycles
        commit = run_trace(trace, SimConfig(), "authen-then-commit").cycles
        assert issue >= commit

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_determinism(self, trace):
        a = run_trace(trace, SimConfig(), "commit+fetch")
        b = run_trace(trace, SimConfig(), "commit+fetch")
        assert a.cycles == b.cycles

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces(max_len=60))
    def test_ipc_bounded_by_width(self, trace):
        result = run_trace(trace, SimConfig(), "decrypt-only")
        assert result.ipc <= SimConfig().core.commit_width
