"""Differential equivalence suite for the shared timestamp kernel.

The merge gate of the decode-once/evaluate-many pipeline: every
registered policy, replayed from one structural prepass, must be
*bit-identical* -- cycles, every StatGroup counter, the miss summary --
to the legacy per-policy simulator on the same trace.  The native (C)
build of the kernel is additionally pinned bit-identical to the
pure-Python loop whenever a compiler is available.
"""

import pytest

from repro.config import SimConfig
from repro.cpu import native
from repro.cpu.prepass import (build_prepass, policy_supported,
                               prepass_supported)
from repro.cpu.shared_kernel import (_policy_constants, _replay_python,
                                     replay_policy)
from repro.exec.cache import cached_trace
from repro.policies import available_policies, make_policy
from repro.sim.runner import build_simulator

BENCHMARKS = ("mcf", "swim")
NUM_INSTRUCTIONS = 1200
WARMUP = 400


@pytest.fixture(scope="module")
def config():
    return SimConfig()


@pytest.fixture(scope="module")
def prepasses(config):
    """One decoded prepass per benchmark, shared across every test."""
    out = {}
    for bench in BENCHMARKS:
        trace = cached_trace(bench, NUM_INSTRUCTIONS + WARMUP,
                             config.seed)
        out[bench] = (trace, build_prepass(trace, config, warmup=WARMUP))
    return out


def _legacy(config, trace, policy_name):
    core, _hierarchy = build_simulator(config, policy_name)
    return core.run(trace, warmup=WARMUP)


class TestSharedPassEquivalence:
    """Shared-pass replay == legacy simulator, for every policy."""

    @pytest.mark.parametrize("policy_name", available_policies())
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_bit_identical_to_legacy(self, prepasses, config, bench,
                                     policy_name):
        policy = make_policy(policy_name)
        trace, prepass = prepasses[bench]
        legacy = _legacy(config, trace, policy_name)
        if not policy_supported(policy):
            # Outside the shared-pass envelope (address obfuscation);
            # the grouped pipeline falls back to the legacy simulator
            # for these members, so there is nothing to diff here.
            pytest.skip("policy outside the shared-pass envelope")
        shared = replay_policy(prepass, policy, config,
                               trace_name=bench)
        assert shared.cycles == legacy.cycles
        assert shared.instructions == legacy.instructions
        assert shared.stats.as_dict() == legacy.stats.as_dict()
        assert shared.miss_summary == legacy.miss_summary

    def test_envelope_covers_all_but_obfuscation(self):
        outside = [name for name in available_policies()
                   if not policy_supported(make_policy(name))]
        assert outside == ["commit+obfuscation"]

    def test_default_config_inside_envelope(self, config):
        assert prepass_supported(config)

    def test_prepass_reused_across_policies(self, prepasses, config):
        """One prepass serves every policy: replays do not mutate it."""
        trace, prepass = prepasses["mcf"]
        before = (list(prepass.a_pre), list(prepass.m_counter),
                  dict(prepass.miss_summary))
        for policy_name in ("decrypt-only", "authen-then-issue",
                            "authen-then-fetch-precise"):
            replay_policy(prepass, make_policy(policy_name), config)
        assert (list(prepass.a_pre), list(prepass.m_counter),
                dict(prepass.miss_summary)) == before


class TestNativeKernel:
    """Native (C) replay == pure-Python replay, payload for payload."""

    @pytest.mark.skipif(not native.native_available(),
                        reason="no C compiler / native kernel disabled")
    @pytest.mark.parametrize("policy_name", available_policies())
    def test_payload_identical_to_python(self, prepasses, config,
                                         policy_name):
        policy = make_policy(policy_name)
        if not policy_supported(policy):
            pytest.skip("policy outside the shared-pass envelope")
        _trace, prepass = prepasses["mcf"]
        constants = _policy_constants(policy, config)
        payload = native.replay(prepass, constants)
        assert payload is not None
        assert payload == _replay_python(prepass, constants)

    @pytest.mark.skipif(not native.native_available(),
                        reason="no C compiler / native kernel disabled")
    def test_buffers_cached_on_prepass(self, prepasses, config):
        _trace, prepass = prepasses["swim"]
        constants = _policy_constants(make_policy("decrypt-only"), config)
        native.replay(prepass, constants)
        first = prepass._native
        native.replay(prepass, constants)
        assert prepass._native is first

    def test_env_kill_switch(self, prepasses, config, monkeypatch):
        """REPRO_NATIVE=0 forces the pure-Python loop (and back)."""
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset()
        try:
            assert not native.native_available()
            constants = _policy_constants(make_policy("decrypt-only"),
                                          config)
            assert native.replay(prepasses["mcf"][1], constants) is None
            # replay_policy transparently falls back.
            result = replay_policy(prepasses["mcf"][1],
                                   make_policy("decrypt-only"), config)
            assert result.cycles > 0
        finally:
            monkeypatch.delenv("REPRO_NATIVE", raising=False)
            native.reset()
