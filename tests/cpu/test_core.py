"""Timestamp-core tests: pipeline constraints and policy effects."""

import pytest

from repro.config import SimConfig
from repro.sim.runner import build_simulator, run_trace
from repro.workloads.spec import get_profile
from repro.workloads.trace import Op, Trace, TraceInst
from repro.workloads.tracegen import generate_trace


def alu(pc, dest, srcs=()):
    return TraceInst(pc, Op.IALU, dest, srcs)


def load(pc, dest, addr, srcs=()):
    return TraceInst(pc, Op.LOAD, dest, srcs, addr)


def run(insts, policy="decrypt-only", config=None):
    return run_trace(Trace("t", insts), config or SimConfig(), policy)


class TestBasicPipeline:
    def test_empty_trace(self):
        result = run([])
        assert result.cycles == 0
        assert result.ipc == 0.0

    def test_independent_alus_superscalar(self):
        """8-wide core retires independent ALU work at > 1 IPC (code kept
        inside two I-lines so only two cold I-misses occur)."""
        insts = [alu(4 * i % 64, 1 + (i % 32)) for i in range(2000)]
        result = run(insts)
        assert result.ipc > 2.0

    def test_serial_chain_is_one_ipc_max(self):
        insts = [alu(4 * i % 64, 1, (1,)) for i in range(2000)]
        result = run(insts)
        assert result.ipc <= 1.05

    def test_mul_latency_slows_chain(self):
        chain = [TraceInst(4 * i, Op.IMUL, 1, (1,)) for i in range(500)]
        fast = run([alu(4 * i, 1, (1,)) for i in range(500)])
        slow = run(chain)
        assert slow.ipc < fast.ipc

    def test_mispredicts_cost_cycles(self):
        clean = [TraceInst(4 * i, Op.BRANCH, -1, (1,)) for i in range(500)]
        dirty = [TraceInst(4 * i, Op.BRANCH, -1, (1,), -1, True)
                 for i in range(500)]
        assert run(dirty).ipc < run(clean).ipc

    def test_load_miss_slower_than_hit(self):
        # Same line repeatedly vs a new line each time.
        hits = [load(0, 1, 0x1000) for _ in range(200)]
        misses = [load(0, 1, 0x1000 + 4096 * i) for i in range(200)]
        assert run(misses).ipc < run(hits).ipc

    def test_result_metadata(self):
        result = run([alu(0, 1)] * 10, policy="authen-then-commit")
        assert result.policy_name == "authen-then-commit"
        assert result.instructions == 10
        assert result.cycles > 0


class TestWindowConstraints:
    def test_smaller_ruu_hurts_memory_workload(self):
        trace = generate_trace(get_profile("swim"), 6000)
        big = run_trace(trace, SimConfig(), "decrypt-only")
        small = run_trace(trace, SimConfig().with_ruu(16), "decrypt-only")
        assert small.ipc < big.ipc

    def test_warmup_excluded_from_counts(self):
        trace = generate_trace(get_profile("gzip"), 4000)
        core, _ = build_simulator(SimConfig(), "decrypt-only")
        result = core.run(trace, warmup=1000)
        assert result.instructions == 3000

    def test_warmup_improves_measured_ipc(self):
        trace = generate_trace(get_profile("gzip"), 8000)
        cold = run_trace(trace, SimConfig(), "decrypt-only")
        core, _ = build_simulator(SimConfig(), "decrypt-only")
        warm = core.run(trace, warmup=4000)
        assert warm.ipc > cold.ipc


class TestPolicyOrdering:
    """The paper's qualitative results as invariants of the model."""

    @pytest.fixture(scope="class")
    def results(self):
        trace = generate_trace(get_profile("twolf"), 12_000)
        out = {}
        for policy in ("decrypt-only", "authen-then-issue",
                       "authen-then-write", "authen-then-commit",
                       "authen-then-fetch", "commit+fetch"):
            core, _ = build_simulator(SimConfig(), policy)
            out[policy] = core.run(trace, warmup=6000).ipc
        return out

    def test_baseline_is_fastest(self, results):
        base = results["decrypt-only"]
        for policy, ipc in results.items():
            assert ipc <= base * 1.001, policy

    def test_issue_is_slowest_single_scheme(self, results):
        issue = results["authen-then-issue"]
        for policy in ("authen-then-write", "authen-then-commit",
                       "authen-then-fetch"):
            assert results[policy] >= issue, policy

    def test_write_is_fastest_scheme(self, results):
        write = results["authen-then-write"]
        for policy in ("authen-then-issue", "authen-then-commit",
                       "authen-then-fetch", "commit+fetch"):
            assert write >= results[policy], policy

    def test_combination_not_faster_than_parts(self, results):
        combo = results["commit+fetch"]
        assert combo <= results["authen-then-commit"] * 1.001
        assert combo <= results["authen-then-fetch"] * 1.001

    def test_overheads_are_bounded(self, results):
        """No scheme loses more than half the baseline on this workload."""
        base = results["decrypt-only"]
        for policy, ipc in results.items():
            assert ipc > 0.5 * base, policy


class TestStallAccounting:
    def test_issue_policy_reports_issue_stalls(self):
        trace = generate_trace(get_profile("art"), 4000)
        core, _ = build_simulator(SimConfig(), "authen-then-issue")
        result = core.run(trace)
        assert result.stats["auth_issue_stall_cycles"].value > 0
        assert result.stats["auth_commit_stall_cycles"].value == 0

    def test_commit_policy_reports_commit_stalls(self):
        trace = generate_trace(get_profile("art"), 4000)
        core, _ = build_simulator(SimConfig(), "authen-then-commit")
        result = core.run(trace)
        assert result.stats["auth_commit_stall_cycles"].value > 0
        assert result.stats["auth_issue_stall_cycles"].value == 0

    def test_baseline_reports_no_auth_stalls(self):
        trace = generate_trace(get_profile("art"), 4000)
        core, _ = build_simulator(SimConfig(), "decrypt-only")
        result = core.run(trace)
        assert result.stats["auth_issue_stall_cycles"].value == 0
        assert result.stats["auth_commit_stall_cycles"].value == 0


class TestBranchPredictor:
    def test_bimodal_learns_bias(self):
        from repro.cpu.branch import BimodalPredictor

        predictor = BimodalPredictor(table_entries=64)
        for _ in range(100):
            predictor.predict_update(0x40, True, target=0x100)
        assert predictor.accuracy() > 0.9

    def test_alternating_pattern_defeats_bimodal(self):
        from repro.cpu.branch import BimodalPredictor

        predictor = BimodalPredictor(table_entries=64)
        for i in range(200):
            predictor.predict_update(0x40, i % 2 == 0, target=0x100)
        assert predictor.accuracy() < 0.8

    def test_power_of_two_enforced(self):
        from repro.cpu.branch import BimodalPredictor

        with pytest.raises(ValueError):
            BimodalPredictor(table_entries=100)

    def test_btb_miss_counts_as_mispredict(self):
        from repro.cpu.branch import BimodalPredictor

        predictor = BimodalPredictor()
        # Train direction to taken without target knowledge churn.
        predictor.predict_update(0x80, True, target=0x200)
        wrong = predictor.predict_update(0x80, True, target=0x999)
        assert wrong  # stale BTB target
