"""Issue-calendar sliding-window bound.

The issue calendar (issue cycle -> instructions issued that cycle) used
to grow with run length: every instruction can add a key and nothing
removed them.  The core now prunes entries behind the fetch frontier
every ``_CALENDAR_PRUNE_INTERVAL`` instructions -- timing-neutrally,
since every future probe is at or above ``fetch_frontier + depth`` and
the frontier is monotonic.  These tests pin the memory bound.
"""

from repro.config import SimConfig
from repro.cpu.core import _CALENDAR_PRUNE_INTERVAL
from repro.sim.runner import build_simulator
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace


def run_core(bench="mcf", n=30_000, policy="authen-then-commit"):
    trace = generate_trace(get_profile(bench), n,
                           seed=SimConfig().seed)
    core, _ = build_simulator(SimConfig(), policy)
    result = core.run(trace, warmup=1000)
    return core, result


class TestCalendarBound:
    def test_peak_is_bounded_on_long_runs(self):
        """Peak live calendar population stays within one prune interval
        (plus the in-flight issue spread), independent of run length."""
        core, result = run_core()
        assert result.instructions == 29_000
        assert core.issue_calendar_peak > 0
        assert core.issue_calendar_peak <= 2 * _CALENDAR_PRUNE_INTERVAL

    def test_peak_does_not_scale_with_run_length(self):
        short_core, _ = run_core(n=12_000)
        long_core, _ = run_core(n=36_000)
        # 3x the instructions must not mean 3x the calendar: both peaks
        # sit under the same prune-interval bound.
        assert long_core.issue_calendar_peak <= \
            2 * _CALENDAR_PRUNE_INTERVAL
        assert short_core.issue_calendar_peak <= \
            2 * _CALENDAR_PRUNE_INTERVAL

    def test_pruning_is_timing_neutral_vs_interval(self):
        """Shrinking the prune interval (more aggressive pruning) must
        not change a single cycle -- dead keys are dead at any cadence."""
        import repro.cpu.core as core_mod

        trace = generate_trace(get_profile("twolf"), 8_000,
                               seed=SimConfig().seed)
        core, _ = build_simulator(SimConfig(), "authen-then-issue")
        reference = core.run(trace, warmup=2_000)
        original = core_mod._CALENDAR_PRUNE_INTERVAL
        core_mod._CALENDAR_PRUNE_INTERVAL = 512
        try:
            core2, _ = build_simulator(SimConfig(), "authen-then-issue")
            aggressive = core2.run(trace, warmup=2_000)
        finally:
            core_mod._CALENDAR_PRUNE_INTERVAL = original
        assert aggressive.cycles == reference.cycles
        assert aggressive.stats.as_dict() == reference.stats.as_dict()
