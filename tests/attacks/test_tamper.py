"""Tamper-toolkit unit tests (the adversary's primitives)."""

import pytest

from repro import load_program, make_policy
from repro.attacks.tamper import flip_word, splice_assembly, splice_words
from repro.func.loader import load_words
from repro.func.machine import SecureMachine
from repro.isa.assembler import assemble


def machine():
    return SecureMachine(make_policy("decrypt-only"))


class TestFlipWord:
    def test_flip_changes_decrypted_word(self):
        m = machine()
        load_words(m, 0x2000, [0x1111])
        flip_word(m, 0x2000, 0x1111, 0x2222)
        assert int.from_bytes(m.peek_plaintext(0x2000, 4), "big") == 0x2222

    def test_flip_is_relative_to_claimed_plaintext(self):
        """A wrong plaintext guess produces a predictable wrong result."""
        m = machine()
        load_words(m, 0x2000, [0xAAAA])
        flip_word(m, 0x2000, 0x0000, 0xFFFF)  # guess was wrong
        value = int.from_bytes(m.peek_plaintext(0x2000, 4), "big")
        assert value == 0xAAAA ^ 0xFFFF

    def test_neighbouring_words_untouched(self):
        m = machine()
        load_words(m, 0x2000, [1, 2, 3])
        flip_word(m, 0x2004, 2, 99)
        assert int.from_bytes(m.peek_plaintext(0x2000, 4), "big") == 1
        assert int.from_bytes(m.peek_plaintext(0x2008, 4), "big") == 3


class TestSplice:
    def test_splice_replaces_known_code(self):
        m = machine()
        original = assemble("addi r1, r0, 1\naddi r2, r0, 2")
        load_words(m, 0, original)
        new = assemble("out r5\nhalt")
        splice_words(m, 0, original, new)
        plain = m.peek_plaintext(0, 8)
        assert [int.from_bytes(plain[i:i+4], "big")
                for i in (0, 4)] == new

    def test_splice_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            splice_words(machine(), 0, [1, 2], [3])

    def test_splice_assembly_returns_word_count(self):
        m = machine()
        known = assemble("\n".join(["nop"] * 4))
        load_words(m, 0, known)
        count = splice_assembly(m, 0, known, "addi r1, r0, 7\nhalt")
        assert count == 2

    def test_splice_assembly_too_large_rejected(self):
        m = machine()
        known = assemble("nop")
        load_words(m, 0, known)
        with pytest.raises(ValueError):
            splice_assembly(m, 0, known, "nop\nnop\nnop")

    def test_spliced_code_executes(self):
        """End to end: splice runs as injected code on the machine."""
        m = machine()
        load_program(m, "\n".join(["addi r1, r0, 0"] * 4 + ["halt"]))
        known = assemble("\n".join(["addi r1, r0, 0"] * 4))
        splice_assembly(m, 0, known, "addi r9, r0, 99\nout r9\nhalt")
        result = m.run(100)
        assert result.io_log == [99]
