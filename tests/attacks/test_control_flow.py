"""Passive control-flow reconstruction tests (Section 3.1 / 4.3)."""

import pytest

from repro.attacks.control_flow import ControlFlowAttack
from repro.attacks.harness import _make_obfuscator, run_attack
from repro.policies.registry import make_policy


class TestControlFlowReconstruction:
    def test_recovers_secret_without_tampering(self):
        attack = ControlFlowAttack(secret=0xB3C5)
        machine, result = attack.run(make_policy("decrypt-only"))
        recovered, observed = attack.reconstruct(result)
        assert recovered == 0xB3C5
        assert observed == 16
        assert result.halted and not result.detected

    def test_authentication_cannot_stop_passive_leak(self):
        """No tampering happens, so even authen-then-issue leaks: this is
        the threat class only obfuscation addresses (Section 4.3)."""
        for policy in ("authen-then-issue", "commit+fetch"):
            attack = ControlFlowAttack(secret=0x1234)
            machine, result = attack.run(make_policy(policy))
            assert attack.leaked_secret(machine, result), policy

    def test_obfuscation_blocks_reconstruction(self):
        attack = ControlFlowAttack(secret=0xB3C5)
        machine, result = attack.run(make_policy("commit+obfuscation"),
                                     obfuscator=_make_obfuscator())
        assert result.halted
        assert not attack.leaked_secret(machine, result)

    def test_different_secrets_give_different_traces(self):
        traces = []
        for secret in (0x0000, 0xFFFF):
            attack = ControlFlowAttack(secret=secret)
            machine, result = attack.run(make_policy("decrypt-only"))
            recovered, _ = attack.reconstruct(result)
            assert recovered == secret
            traces.append(result.bus_addresses("ifetch"))
        assert traces[0] != traces[1]

    def test_harness_integration(self):
        assert run_attack("control-flow", "decrypt-only").leaked
        assert not run_attack("control-flow", "commit+obfuscation").leaked

    def test_secret_bounds(self):
        with pytest.raises(ValueError):
            ControlFlowAttack(secret=1 << 16)
