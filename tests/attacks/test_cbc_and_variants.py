"""CBC-mode machine, CBC malleability attack, and fetch-variant tests."""

import pytest

from repro.attacks.cbc_malleability import CbcPointerConversionAttack
from repro.func.loader import load_program, load_words
from repro.func.machine import SecureMachine
from repro.policies.registry import make_policy


class TestCbcMachine:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SecureMachine(make_policy("decrypt-only"), mode="ecb")

    def test_cbc_roundtrip(self):
        m = SecureMachine(make_policy("decrypt-only"), mode="cbc")
        load_words(m, 0x2000, [0xCAFEBABE, 0x12345678])
        assert m.peek_plaintext(0x2000, 8) == bytes.fromhex(
            "cafebabe12345678")

    def test_cbc_ciphertext_differs_from_ctr(self):
        ctr = SecureMachine(make_policy("decrypt-only"), mode="ctr")
        cbc = SecureMachine(make_policy("decrypt-only"), mode="cbc")
        for m in (ctr, cbc):
            load_words(m, 0x2000, [0xDEADBEEF])
        assert ctr.mem.read(0x2000, 16) != cbc.mem.read(0x2000, 16)

    def test_cbc_program_executes(self):
        m = SecureMachine(make_policy("authen-then-commit"), mode="cbc")
        load_program(m, """
            addi r1, r0, 21
            add  r2, r1, r1
            out  r2
            halt
        """)
        r = m.run()
        assert r.halted and r.io_log == [42]

    def test_cbc_flip_garbles_own_block_flips_next(self):
        """The malleability geometry the attack exploits."""
        m = SecureMachine(make_policy("decrypt-only"), mode="cbc")
        load_words(m, 0x2000, [0, 0, 0, 0, 0, 0, 0, 0])  # one full line
        m.mem.flip_bits(0x2000, b"\x00\x00\x00\x01")
        plain = m.peek_plaintext(0x2000, 32)
        # Block 0 garbled (overwhelmingly unlikely to stay zero)...
        assert plain[0:16] != bytes(16)
        # ...block 1 gets exactly the flipped bit; block 2+ untouched
        # (wait: flip affects plain block i+1 only for the flipped block).
        assert plain[16:20] == b"\x00\x00\x00\x01"
        assert plain[20:32] == bytes(12)

    def test_cbc_tamper_detected(self):
        m = SecureMachine(make_policy("authen-then-issue"), mode="cbc")
        load_program(m, "halt")
        m.mem.flip_bits(0, b"\x01")
        r = m.run()
        assert r.detected


class TestCbcPointerConversion:
    def test_leaks_under_commit(self):
        attack = CbcPointerConversionAttack()
        machine, result = attack.run(make_policy("authen-then-commit"))
        assert attack.leaked_secret(machine, result)
        assert result.detected  # flagged, but after the leak

    def test_blocked_under_fetch_gating(self):
        attack = CbcPointerConversionAttack()
        machine, result = attack.run(make_policy("commit+fetch"))
        assert not attack.leaked_secret(machine, result)

    def test_untampered_walk_clean(self):
        attack = CbcPointerConversionAttack()
        machine = attack.build_victim(make_policy("authen-then-commit"))
        result = machine.run(2000)
        assert result.halted and not result.detected


class TestPreciseFetchVariant:
    def test_registered(self):
        policy = make_policy("authen-then-fetch-precise")
        assert policy.gate_fetch and policy.fetch_mode == "precise"

    def test_blocks_exploits_like_tag_variant(self):
        from repro.attacks.harness import run_attack

        result = run_attack("pointer-conversion",
                            "authen-then-fetch-precise")
        assert not result.leaked

    def test_precise_wins_on_streams(self):
        """Stream code with rare branches is where the precise slice
        tracking pays off over the LastRequest tag."""
        from repro.sim.sweep import PolicySweep

        sweep = PolicySweep(["swim"],
                            ["authen-then-fetch",
                             "authen-then-fetch-precise"],
                            num_instructions=6000, warmup=6000).run()
        tag = sweep.normalized("swim", "authen-then-fetch")
        precise = sweep.normalized("swim", "authen-then-fetch-precise")
        assert precise >= tag - 0.02


class TestEncryptionModeTiming:
    def test_cbc_baseline_slower_than_ctr(self):
        from repro.experiments.ablations import encryption_mode_comparison

        result = encryption_mode_comparison(
            benchmarks=("twolf",), num_instructions=4000, warmup=4000)
        assert (result["cbc"]["decrypt-only"]
                < result["ctr"]["decrypt-only"])
