"""End-to-end exploit tests: who leaks, who blocks (the paper's Table 2)."""

import pytest

from repro.attacks.binary_search import BinarySearchAttack
from repro.attacks.brute_force import BruteForcePageAttack
from repro.attacks.disclosing_kernel import (
    DataSpaceKernelAttack,
    DisclosingKernelAttack,
    IoKernelAttack,
    SECRET_VALUE,
)
from repro.attacks.harness import (
    FETCH_CHANNEL_ATTACKS,
    prevents_fetch_side_channel,
    run_attack,
)
from repro.attacks.page_mask import PageMaskAttack
from repro.attacks.pointer_conversion import PointerConversionAttack
from repro.attacks.replay import ReplayAttack
from repro.policies.registry import make_policy
from repro.policies.security import TABLE2_POLICIES

WEAK = ("decrypt-only", "lazy", "authen-then-write", "authen-then-commit")
STRONG = ("authen-then-issue", "authen-then-fetch", "commit+fetch",
          "commit+obfuscation")


class TestPointerConversion:
    @pytest.mark.parametrize("policy", WEAK)
    def test_leaks_under_weak_policies(self, policy):
        attack = PointerConversionAttack()
        machine, result = attack.run(make_policy(policy))
        assert attack.leaked_secret(machine, result)

    @pytest.mark.parametrize("policy", STRONG)
    def test_blocked_under_strong_policies(self, policy):
        result = run_attack("pointer-conversion", policy)
        assert not result.leaked

    def test_authenticating_policies_detect_tamper(self):
        for policy in ("authen-then-commit", "authen-then-issue"):
            result = run_attack("pointer-conversion", policy)
            assert result.detected, policy

    def test_untampered_walk_is_clean(self):
        attack = PointerConversionAttack()
        machine = attack.build_victim(make_policy("authen-then-commit"))
        result = machine.run(2000)
        assert result.halted and not result.detected
        assert not attack.leaked_secret(machine, result)


class TestBinarySearch:
    def test_recovers_secret_under_commit(self):
        attack = BinarySearchAttack(secret=0x5A5)
        recovered, trials, detected = attack.recover(
            make_policy("authen-then-commit"), bits=12)
        assert recovered == 0x5A5
        assert trials <= 12
        assert detected  # every tampered run is flagged -- but too late

    def test_blocked_under_fetch(self):
        attack = BinarySearchAttack(secret=0x5A5)
        recovered, trials, _ = attack.recover(
            make_policy("commit+fetch"), bits=12)
        assert recovered is None
        assert trials == 1  # first probe already fails to leak

    def test_secret_bounds(self):
        with pytest.raises(ValueError):
            BinarySearchAttack(secret=-1)
        with pytest.raises(ValueError):
            BinarySearchAttack(secret=1 << 31)


class TestDisclosingKernel:
    def test_code_space_recovers_byte_buckets(self):
        attack = DisclosingKernelAttack()
        machine, result = attack.run(make_policy("authen-then-commit"))
        assert attack.leaked_secret(machine, result)
        buckets = attack.recovered_bytes(result)
        # Low byte of the secret pinned to its 32-byte bucket.
        assert buckets[0] == (SECRET_VALUE & 0xFF) // 32 * 32

    def test_data_space_variant_leaks(self):
        attack = DataSpaceKernelAttack()
        machine, result = attack.run(make_policy("authen-then-write"))
        assert attack.leaked_secret(machine, result)

    def test_io_variant_blocked_by_commit(self):
        """Section 3.2.3: authen-then-commit suffices for the I/O channel."""
        attack = IoKernelAttack()
        machine, result = attack.run(make_policy("authen-then-commit"))
        assert not attack.leaked_secret(machine, result)

    def test_io_variant_leaks_under_write(self):
        attack = IoKernelAttack()
        machine, result = attack.run(make_policy("authen-then-write"))
        assert attack.leaked_secret(machine, result)

    def test_blocked_by_issue_and_fetch(self):
        for policy in ("authen-then-issue", "authen-then-fetch"):
            attack = DisclosingKernelAttack()
            machine, result = attack.run(make_policy(policy))
            assert not attack.leaked_secret(machine, result), policy


class TestPageMask:
    def test_defeats_virtual_memory(self):
        """Figure 4's masking works even with translation enabled."""
        attack = PageMaskAttack()
        machine, result = attack.run(make_policy("authen-then-commit"))
        assert machine.use_vm
        assert attack.leaked_secret(machine, result)
        assert result.fault_log == []  # no faults: masking avoided them

    def test_blocked_under_commit_plus_fetch(self):
        attack = PageMaskAttack()
        machine, result = attack.run(make_policy("commit+fetch"))
        assert not attack.leaked_secret(machine, result)


class TestBruteForce:
    def test_fault_log_leaks_under_weak_policy(self):
        """Section 3.3: the fault log itself discloses the secret."""
        attack = BruteForcePageAttack()
        leaked, result = attack.fault_log_leak(make_policy("decrypt-only"))
        assert leaked

    def test_fault_log_silent_under_commit(self):
        attack = BruteForcePageAttack()
        leaked, result = attack.fault_log_leak(
            make_policy("authen-then-commit"))
        assert not leaked
        assert result.detected

    def test_random_tampering_eventually_translates(self):
        attack = BruteForcePageAttack(mapped_pages=64)
        trial, trials, _ = attack.random_tampering(
            make_policy("decrypt-only"), max_trials=50)
        assert trial is not None


class TestReplay:
    def test_flat_mac_accepts_replay(self):
        effective, result = ReplayAttack().run(
            make_policy("authen-then-commit"), hash_tree=False)
        assert effective
        assert not result.detected

    def test_hash_tree_rejects_replay(self):
        effective, result = ReplayAttack().run(
            make_policy("authen-then-commit"), hash_tree=True)
        assert not effective
        assert result.detected


class TestTable2Empirical:
    """The harness-level reproduction of Table 2, column 1."""

    @pytest.mark.parametrize("policy", TABLE2_POLICIES)
    def test_empirical_matches_analytical(self, policy):
        expected = make_policy(policy).security.prevents_fetch_side_channel
        assert prevents_fetch_side_channel(policy) == expected

    def test_attack_roster(self):
        assert len(FETCH_CHANNEL_ATTACKS) == 5

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            run_attack("rowhammer", "authen-then-commit")
