"""Round-trip tests: every figure's JSON series matches its .txt render.

``repro figures --emit-json`` writes ``<figure>.json`` next to each
``<figure>.txt``.  For every table-backed figure the JSON cells must
reproduce the rendered table cell-for-cell (same ``%.3f`` formatting,
``--`` for None), so the serving/diff tier never drifts from the
human-readable artifact.  fig6 and variance render prose rather than
tables; their series are checked value-by-value against the text.
"""

import json
import re

import pytest

from repro.experiments.figures import ARTIFACTS, run_figures
from repro.obs.export import FIGURE_SERIES_VERSION

SCALE = dict(num_instructions=600, warmup=300)
BENCHMARKS = ("gzip", "mcf")

#: Figures whose .txt is prose, not render_table output.
PROSE = ("fig6", "variance")


@pytest.fixture(scope="module")
def emitted(tmp_path_factory):
    out = tmp_path_factory.mktemp("series")
    run_figures(list(ARTIFACTS), str(out), benchmarks=BENCHMARKS,
                emit_json=True, **SCALE)
    return out


def _load(emitted, name):
    payload = json.loads((emitted / (name + ".json")).read_text())
    text = (emitted / (name + ".txt")).read_text()
    return payload, text


def _tables(text):
    """Every render_table block in ``text`` as (headers, rows) strings.

    The dash rule under the header line gives the exact column extents
    (render_table pads every cell to the column width), so cells are
    recovered by slicing -- robust to values containing runs of spaces.
    """
    lines = text.split("\n")
    tables, i = [], 0
    while i + 1 < len(lines):
        rule = lines[i + 1]
        dashes = rule.replace(" ", "")
        if not (dashes and set(dashes) == {"-"}
                and set(rule) <= {"-", " "} and lines[i].strip()):
            i += 1
            continue
        spans = [(m.start(), m.end()) for m in re.finditer(r"-+", rule)]
        cut = lambda line: [line[a:b].strip() for a, b in spans]
        headers = cut(lines[i])
        rows = []
        j = i + 2
        while j < len(lines) and lines[j].strip():
            rows.append(cut(lines[j]))
            j += 1
        tables.append((headers, rows))
        i = j
    return tables


def _cell(value):
    """A JSON cell formatted exactly as render_table formats it."""
    if value is None:
        return "--"
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


class TestSchema:
    @pytest.mark.parametrize("name", list(ARTIFACTS))
    def test_envelope(self, emitted, name):
        payload, _ = _load(emitted, name)
        assert payload["format_version"] == FIGURE_SERIES_VERSION
        assert payload["kind"] == "figure-series"
        assert payload["figure"] == name
        assert payload["title"]
        assert payload["panels"]
        for panel in payload["panels"]:
            assert panel["name"] and panel["title"] and panel["x_label"]
            assert panel["series"]
            for series in panel["series"]:
                assert series["name"]
                assert series["points"]
                for point in series["points"]:
                    assert set(point) == {"x", "y"}

    def test_manifest_records_series_artifacts(self, emitted):
        manifest = json.loads(
            (emitted / "figures-manifest.json").read_text())
        for entry in manifest["figures"]:
            assert entry["series_artifact"] == \
                entry["name"] + ".json"


class TestTableRoundTrip:
    @pytest.mark.parametrize(
        "name", [n for n in ARTIFACTS if n not in PROSE])
    def test_json_matches_txt_cell_for_cell(self, emitted, name):
        payload, text = _load(emitted, name)
        tables = _tables(text)
        panels = payload["panels"]
        assert len(tables) == len(panels), \
            "%s: %d tables vs %d panels" % (name, len(tables),
                                            len(panels))
        for (headers, rows), panel in zip(tables, panels):
            assert headers[1:] == \
                [series["name"] for series in panel["series"]]
            xs = [row[0] for row in rows]
            for k, series in enumerate(panel["series"], start=1):
                assert [_cell(p["x"]) for p in series["points"]] == xs
                assert [_cell(p["y"]) for p in series["points"]] == \
                    [row[k] for row in rows]


class TestProseRoundTrip:
    def test_fig6_milestones_and_advantage_appear_in_text(self, emitted):
        payload, text = _load(emitted, "fig6")
        advantage = int(re.search(r"finishes (\d+) cycles earlier",
                                  text).group(1))
        assert payload["extra"]["advantage_cycles"] == advantage
        for series in payload["panels"][0]["series"]:
            assert series["name"] in text
            assert [p["x"] for p in series["points"]] == [
                "fetch1_issue", "data1", "verify1", "fetch2_issue",
                "data2", "verify2"]
            for point in series["points"]:
                assert isinstance(point["y"], int)
            # the render prints the first five milestones (verify2 is
            # series-only): each cycle number must appear verbatim
            for point in series["points"][:5]:
                assert "@%d" % point["y"] in text

    def test_variance_stats_and_verdict_appear_in_text(self, emitted):
        payload, text = _load(emitted, "variance")
        panels = {panel["name"]: panel for panel in payload["panels"]}
        assert set(panels) == {"stats", "samples"}
        for series in panels["stats"]["series"]:
            assert series["name"] in ("mean", "std")
            for point in series["points"]:
                assert _cell(point["y"]) in text
        stable = payload["extra"]["ordering_stable"]
        assert ("ordering stable across seeds: %s" % stable) in text
