"""Variance and ablation experiment-driver tests (small scale)."""

import pytest

from repro.experiments import ablations, variance

SMALL = dict(num_instructions=2500, warmup=2500)


class TestVariance:
    @pytest.fixture(scope="class")
    def result(self):
        return variance.run(seeds=(1, 2), benchmarks=("twolf",), **SMALL)

    def test_sample_counts(self, result):
        for stats in result.values():
            assert len(stats["samples"]) == 2

    def test_mean_and_std_consistent(self, result):
        for stats in result.values():
            a, b = stats["samples"]
            assert stats["mean"] == pytest.approx((a + b) / 2)
            assert stats["std"] == pytest.approx(abs(a - b) / 2)

    def test_render(self, result):
        text = variance.render(result)
        assert "+/-" in text and "ordering stable" in text

    def test_ordering_helper_detects_violation(self):
        fake = {
            "a": {"samples": [0.9], "mean": 0.9, "std": 0},
            "b": {"samples": [0.5], "mean": 0.5, "std": 0},
        }
        assert not variance.ordering_is_stable(fake, order=("a", "b"))
        assert variance.ordering_is_stable(fake, order=("b", "a"))


class TestAblationDrivers:
    def test_mac_latency_keys(self):
        table = ablations.mac_latency_sweep(latencies=(74,),
                                            benchmarks=("twolf",), **SMALL)
        assert list(table) == [74]
        assert 0 < table[74] <= 1.01

    def test_fetch_variants_keys(self):
        result = ablations.fetch_variant_comparison(
            benchmarks=("twolf",), **SMALL)
        assert set(result) == {"tag", "drain", "precise"}

    def test_mode_comparison_keys(self):
        result = ablations.encryption_mode_comparison(
            benchmarks=("twolf",), **SMALL)
        assert set(result) == {"ctr", "cbc"}
        assert set(result["ctr"]) == {"decrypt-only", "authen-then-issue",
                                      "authen-then-commit"}

    def test_split_counter_keys(self):
        result = ablations.split_counter_comparison(
            benchmarks=("twolf",), **SMALL)
        assert set(result) == {"monolithic", "split"}

    def test_prefetch_keys(self):
        result = ablations.prefetch_sweep(degrees=(0, 2),
                                          benchmarks=("swim",), **SMALL)
        assert set(result) == {0, 2}


class TestOrderingStableEdgeCases:
    def test_empty_intersection_is_vacuously_stable(self):
        fake = {
            "a": {"samples": [0.9], "mean": 0.9, "std": 0},
        }
        # None of the ordered policies appear in the result: no seed can
        # witness an inversion, so the ordering holds vacuously (this
        # used to IndexError on the empty intersection).
        assert variance.ordering_is_stable(fake, order=("x", "y"))

    def test_empty_result_is_vacuously_stable(self):
        assert variance.ordering_is_stable({})

    def test_none_samples_cannot_witness_inversion(self):
        fake = {
            "a": {"samples": [0.9, None], "mean": 0.9, "std": 0},
            "b": {"samples": [0.5, None], "mean": 0.5, "std": 0},
        }
        # Seed 0 shows the inversion; seed 1's skipped (None) samples
        # are ignored rather than compared.
        assert not variance.ordering_is_stable(fake, order=("a", "b"))
        only_none = {
            "a": {"samples": [None], "mean": None, "std": None},
            "b": {"samples": [None], "mean": None, "std": None},
        }
        assert variance.ordering_is_stable(only_none, order=("a", "b"))

    def test_render_handles_none_stats(self):
        fake = {
            "a": {"samples": [None], "mean": None, "std": None},
        }
        text = variance.render(fake)
        assert "--" in text
