"""Executor threading through the experiment drivers.

``variance.run`` and every ``sensitivity`` sweep accept ``executor=``
and hand it to the underlying :class:`PolicySweep`; fanning out over
worker processes must be bit-identical to the serial default.
"""

from repro.exec import make_executor
from repro.experiments import sensitivity, variance

BENCHMARKS = ("mcf", "swim")
SCALE = dict(num_instructions=1200, warmup=800)


class TestVarianceExecutor:
    def test_parallel_matches_serial(self):
        serial = variance.run(seeds=(7,), benchmarks=BENCHMARKS, **SCALE)
        with make_executor(2) as executor:
            parallel = variance.run(seeds=(7,), benchmarks=BENCHMARKS,
                                    executor=executor, **SCALE)
        assert serial == parallel

    def test_serial_executor_object_accepted(self):
        with make_executor(1) as executor:
            result = variance.run(seeds=(7,), benchmarks=BENCHMARKS,
                                  executor=executor, **SCALE)
        assert set(result) == set(variance.DEFAULT_POLICIES)


class TestSensitivityExecutor:
    def test_ruu_sweep_parallel_matches_serial(self):
        serial = sensitivity.ruu_sweep(sizes=(64,), benchmarks=BENCHMARKS,
                                       **SCALE)
        with make_executor(2) as executor:
            parallel = sensitivity.ruu_sweep(
                sizes=(64,), benchmarks=BENCHMARKS, executor=executor,
                **SCALE)
        assert serial == parallel

    def test_all_sweeps_accept_executor(self):
        with make_executor(1) as executor:
            for sweep, kwargs in (
                    (sensitivity.decrypt_latency_sweep,
                     dict(latencies=(80,))),
                    (sensitivity.memory_speed_sweep,
                     dict(cas_values=(20,))),
                    (sensitivity.mshr_sweep, dict(entries=(8,))),
                    (sensitivity.ruu_sweep, dict(sizes=(64,)))):
                out = sweep(benchmarks=("swim",), executor=executor,
                            num_instructions=600, warmup=400, **kwargs)
                assert len(out) == 1
