"""``repro figures``: registry, shared-executor fan-out, CLI, failures."""

import json

import pytest

from repro.exec import (
    SKIP_AND_REPORT,
    FailurePolicy,
    make_executor,
    set_attempt_hook,
)
from repro.experiments.figures import ARTIFACTS, run_figures

SCALE = dict(num_instructions=600, warmup=300)
BENCHMARKS = ("gzip", "mcf")


@pytest.fixture
def hook():
    installed = []

    def install(fn):
        installed.append(set_attempt_hook(fn))
        return fn

    yield install
    while installed:
        set_attempt_hook(installed.pop())


class TestRegistry:
    def test_every_artifact_registered(self):
        assert list(ARTIFACTS) == [
            "table1", "table2", "table3", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig12", "ablations", "variance",
            "sensitivity",
        ]

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_figures(["fig99"], str(tmp_path), **SCALE)


class TestRunFigures:
    def test_writes_artifacts_and_manifest(self, tmp_path):
        summary = run_figures(["table1", "fig6"], str(tmp_path), **SCALE)
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "fig6.txt").exists()
        manifest = json.loads(
            (tmp_path / "figures-manifest.json").read_text())
        assert manifest["kind"] == "figures"
        assert manifest["artifacts"] == ["table1", "fig6"]
        assert manifest["total_failures"] == 0
        assert summary["total_failures"] == 0

    def test_parallel_is_byte_identical_to_serial(self, tmp_path):
        serial = run_figures(["fig8"], str(tmp_path / "s"), jobs=1,
                             benchmarks=BENCHMARKS, **SCALE)
        parallel = run_figures(["fig8"], str(tmp_path / "p"), jobs=2,
                               benchmarks=BENCHMARKS, **SCALE)
        want = (tmp_path / "s" / "fig8.txt").read_bytes()
        got = (tmp_path / "p" / "fig8.txt").read_bytes()
        assert want == got
        ms = json.loads((tmp_path / "s" /
                         "figures-manifest.json").read_text())
        mp = json.loads((tmp_path / "p" /
                         "figures-manifest.json").read_text())
        for volatile in ("backend", "git", "phases"):
            ms.pop(volatile), mp.pop(volatile)
        assert ms == mp
        assert serial["entries"][0]["jobs"]  # outcomes were recorded

    def test_manifest_records_backend_and_jobs(self, tmp_path):
        run_figures(["fig8"], str(tmp_path), jobs=2,
                    benchmarks=("gzip",), **SCALE)
        manifest = json.loads(
            (tmp_path / "figures-manifest.json").read_text())
        assert manifest["backend"] == {"backend": "process", "jobs": 2}
        entry = manifest["figures"][0]
        assert entry["name"] == "fig8"
        assert all("wall_time" not in job for job in entry["jobs"])
        assert all(job["status"] == "ok" for job in entry["jobs"])

    def test_borrowed_executor_shared_and_left_open(self, tmp_path):
        with make_executor(2) as executor:
            run_figures(["fig8"], str(tmp_path / "a"),
                        executor=executor, benchmarks=("gzip",), **SCALE)
            # Still usable: the scope must not have closed it.
            run_figures(["fig8"], str(tmp_path / "b"),
                        executor=executor, benchmarks=("gzip",), **SCALE)
        want = (tmp_path / "a" / "fig8.txt").read_bytes()
        assert want == (tmp_path / "b" / "fig8.txt").read_bytes()


class TestFigureFailures:
    def test_failed_job_yields_placeholder_and_footer(self, hook,
                                                      tmp_path):
        def fail_one(job, attempt):
            if (job.benchmark, job.policy) == ("mcf",
                                               "authen-then-commit"):
                raise RuntimeError("injected terminal failure")

        hook(fail_one)
        summary = run_figures(
            ["fig8"], str(tmp_path), benchmarks=BENCHMARKS,
            failure_policy=FailurePolicy(mode=SKIP_AND_REPORT), **SCALE)
        text = (tmp_path / "fig8.txt").read_text()
        assert "--" in text
        assert "failed terminally" in text
        assert "mcf/authen-then-commit" in text
        assert summary["total_failures"] == 1
        manifest = json.loads(
            (tmp_path / "figures-manifest.json").read_text())
        assert manifest["total_failures"] == 1
        failure = manifest["figures"][0]["failures"][0]
        assert failure["benchmark"] == "mcf"
        assert failure["policy"] == "authen-then-commit"


class TestFiguresCli:
    def test_cli_subset_smoke(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["figures", "--only", "fig6,table1", "--jobs", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig6.txt").exists()
        assert (tmp_path / "table1.txt").exists()
        assert "figures manifest written" in capsys.readouterr().out

    def test_cli_rejects_unknown_artifact(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["figures", "--only", "fig99",
                     "--out", str(tmp_path)])
        assert code == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_cli_only_and_all_conflict(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["figures", "--only", "fig6", "--all",
                     "--out", str(tmp_path)])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cli_failure_exits_one(self, capsys, hook, tmp_path):
        from repro.cli import main

        def fail_one(job, attempt):
            if (job.benchmark, job.policy) == ("mcf",
                                               "authen-then-commit"):
                raise RuntimeError("injected terminal failure")

        hook(fail_one)
        code = main(["figures", "--only", "fig8", "--on-error", "skip",
                     "-n", "600", "--warmup", "300",
                     "--out", str(tmp_path)])
        assert code == 1
        assert "failed terminally" in capsys.readouterr().err
