"""Experiment-driver tests (small scale; shapes, not magnitudes)."""

import pytest

from repro.experiments import (
    fig6,
    fig7,
    fig8,
    fig9,
    fig10_11,
    fig12_13,
    table1,
    table2,
    table3,
)

SMALL = dict(num_instructions=2500, warmup=2500)
BENCHES = ["twolf", "swim"]


class TestTables:
    def test_table1_gap_structure(self):
        rows = table1.run(memory_fetch_latency=200)
        ctr, cbc = rows
        assert ctr.scheme == "counter+hmac" and ctr.gap > 0
        assert cbc.scheme == "cbc+cbcmac" and cbc.gap == 0
        assert ctr.decryption_latency < cbc.decryption_latency

    def test_table1_render(self):
        text = table1.render()
        assert "counter+hmac" in text and "gap" in text

    def test_table2_static_rows(self):
        rows = table2.run_static()
        assert rows[0][0] == "scheme"
        assert len(rows) == 6  # header + 5 schemes

    def test_table2_render_without_empirical(self):
        text = table2.render(empirical=False)
        assert "authen-then-issue" in text

    def test_table2_empirical_agrees(self):
        matrix = table2.run_empirical(
            policies=("authen-then-commit", "commit+fetch"),
            attacks=("pointer-conversion",),
        )
        assert matrix["authen-then-commit"]["pointer-conversion"].leaked
        assert not matrix["commit+fetch"]["pointer-conversion"].leaked

    def test_table3_contains_core_parameters(self):
        text = table3.render()
        assert "1.0 GHz" in text and "RUU" in text


class TestFig6:
    def test_fetch_beats_issue(self):
        timelines = fig6.run(compute_latency=30)
        assert (timelines["authen-then-fetch"].finish
                <= timelines["authen-then-issue"].finish)

    def test_advantage_bounded_by_compute_latency(self):
        timelines = fig6.run(compute_latency=20)
        advantage = (timelines["authen-then-issue"].finish
                     - timelines["authen-then-fetch"].finish)
        assert 0 <= advantage <= 20 + 1

    def test_render(self):
        assert "cycles earlier" in fig6.render()


class TestFig7:
    @pytest.fixture(scope="class")
    def panel(self):
        sweep, rows = fig7.run(l2_bytes=256 * 1024, suite="int",
                               benchmarks=BENCHES, **SMALL)
        return sweep, rows

    def test_rows_include_average(self, panel):
        _, rows = panel
        assert rows[-1][0] == "average"

    def test_all_policies_present(self, panel):
        _, rows = panel
        for policy in fig7.FIGURE7_POLICIES:
            assert policy in rows[0][1]

    def test_normalized_values_in_range(self, panel):
        _, rows = panel
        for _, values in rows:
            for policy, value in values.items():
                assert 0.2 < value <= 1.02, (policy, value)

    def test_write_fastest_issue_slowest_among_singles(self, panel):
        _, rows = panel
        avg = rows[-1][1]
        assert avg["authen-then-write"] >= avg["authen-then-commit"]
        assert avg["authen-then-commit"] >= avg["authen-then-issue"] - 0.02


class TestFig8:
    def test_speedups_over_issue(self):
        _, rows = fig8.run(benchmarks=BENCHES, **SMALL)
        avg = rows[-1][1]
        # Relaxed schemes should not be slower than authen-then-issue.
        assert avg["authen-then-write"] >= 0.99
        assert avg["authen-then-commit"] >= 0.99


class TestFig9:
    def test_larger_remap_cache_not_slower(self):
        results = fig9.run(sizes=(16 * 1024, 256 * 1024),
                           benchmarks=["swim", "mcf"], **SMALL)
        avg = fig9.averages(results)
        assert avg[256 * 1024] >= avg[16 * 1024] - 0.02


class TestFig10_11:
    def test_ranking_stable_with_small_ruu(self):
        _, fig10_rows, fig11_rows = fig10_11.run(
            ruu_entries=64, benchmarks=BENCHES, **SMALL)
        avg = fig10_rows[-1][1]
        assert avg["authen-then-write"] >= avg["authen-then-issue"]
        speedups = fig11_rows[-1][1]
        assert speedups["authen-then-commit"] >= 0.98


class TestFig12_13:
    def test_hash_tree_slows_everything(self):
        _, tree_rows, _ = fig12_13.run(benchmarks=BENCHES, **SMALL)
        _, flat_rows = fig7.run(benchmarks=BENCHES, suite="int", **SMALL)
        tree_avg = tree_rows[-1][1]["authen-then-commit"]
        flat_avg = flat_rows[-1][1]["authen-then-commit"]
        assert tree_avg <= flat_avg + 0.02

    def test_ranking_preserved_under_tree(self):
        _, rows, _ = fig12_13.run(benchmarks=BENCHES, **SMALL)
        avg = rows[-1][1]
        assert avg["authen-then-write"] >= avg["authen-then-issue"]
