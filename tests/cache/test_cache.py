"""Set-associative cache model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.config import CacheConfig


def small_cache(assoc=2, sets=4, line=32):
    return Cache(
        CacheConfig("test", sets * assoc * line, line, assoc, latency=1)
    )


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit

    def test_same_line_different_offset_hits(self):
        cache = small_cache(line=32)
        cache.access(0x100)
        assert cache.access(0x11F).hit
        assert not cache.access(0x120).hit

    def test_lookup_does_not_allocate(self):
        cache = small_cache()
        assert cache.lookup(0x40) is None
        assert cache.occupancy == 0

    def test_line_addr(self):
        cache = small_cache(line=32)
        assert cache.line_addr(0x47) == 0x40


class TestLru:
    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1, line=32)
        cache.access(0x00)
        cache.access(0x20)
        cache.access(0x00)          # touch: 0x20 becomes LRU
        result = cache.access(0x40)  # evicts 0x20
        assert result.victim_addr == 0x20
        assert cache.access(0x00).hit
        assert not cache.access(0x20).hit

    def test_victim_address_reconstruction(self):
        cache = small_cache(assoc=1, sets=4, line=32)
        cache.access(0x60)  # set index 3
        result = cache.access(0x60 + 4 * 32)  # same set, different tag
        assert result.victim_addr == 0x60


class TestWriteBack:
    def test_dirty_victim_reports_writeback(self):
        cache = small_cache(assoc=1, sets=1, line=32)
        cache.access(0x00, is_write=True)
        result = cache.access(0x20)
        assert result.victim_dirty
        assert cache.stats["writebacks"].value == 1

    def test_clean_victim_no_writeback(self):
        cache = small_cache(assoc=1, sets=1, line=32)
        cache.access(0x00)
        result = cache.access(0x20)
        assert not result.victim_dirty
        assert cache.stats["writebacks"].value == 0

    def test_write_hit_sets_dirty(self):
        cache = small_cache(assoc=1, sets=1, line=32)
        cache.access(0x00)
        cache.access(0x00, is_write=True)
        assert cache.access(0x20).victim_dirty


class TestMetadataTimestamps:
    def test_line_state_persists_verify_time(self):
        """A hit must see the pending verify_time set at fill."""
        cache = small_cache()
        fill = cache.access(0x100)
        fill.line.data_time = 500
        fill.line.verify_time = 700
        hit = cache.access(0x100)
        assert hit.line.verify_time == 700

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.invalidate(0x100)
        assert not cache.invalidate(0x100)
        assert not cache.access(0x100).hit


class TestStatsAndProperties:
    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate() == pytest.approx(1 / 3)

    def test_reset(self):
        cache = small_cache()
        cache.access(0)
        cache.reset()
        assert cache.occupancy == 0
        assert cache.stats["misses"].value == 0

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = small_cache(assoc=2, sets=4)
        for addr in addrs:
            cache.access(addr)
        assert cache.occupancy <= 8
        for s in cache._sets:
            assert len(s) <= 2

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=60))
    def test_resident_lines_are_hits(self, addrs):
        cache = small_cache(assoc=4, sets=8)
        for addr in addrs:
            cache.access(addr)
        for line_addr in cache.resident_lines():
            assert cache.lookup(line_addr) is not None

    @settings(max_examples=30, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 12), min_size=2, max_size=80))
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = small_cache()
        for addr in addrs:
            cache.access(addr)
        total = cache.stats["hits"].value + cache.stats["misses"].value
        assert total == len(addrs)


class TestTlb:
    def test_miss_then_hit_latency(self):
        from repro.cache.tlb import Tlb

        tlb = Tlb(entries=8, associativity=2, miss_latency=30)
        assert tlb.translate_latency(0x1234) == 30
        assert tlb.translate_latency(0x1FFF) == 0  # same 4KB page
        assert tlb.translate_latency(0x2000) == 30

    def test_config_validation(self):
        from repro.config import CacheConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CacheConfig("bad", 100, 32, 4, 1)
        with pytest.raises(ConfigError):
            CacheConfig("bad", 4096, 24, 1, 1)
        with pytest.raises(ConfigError):
            CacheConfig("bad", 4096, 32, 1, 0)
